"""Combinational netlist container.

A :class:`Netlist` is a DAG of named nets.  Every net is driven by exactly
one :class:`~repro.netlist.gates.Gate` (primary inputs are gates of type
``INPUT``).  Primary outputs are a designated subset of net names; a net may
be an output and still feed other gates.

The class keeps derived structures (topological order, fanout map, levels)
in lazily-built caches that are invalidated on mutation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .gates import Gate, GateType, evaluate_gate


class NetlistError(ValueError):
    """Structural error in a netlist (cycle, dangling net, duplicate...)."""


class Netlist:
    """A combinational gate-level circuit.

    Args:
        name: circuit name (used by writers and reports).
    """

    def __init__(self, name: str = "circuit", allow_cycles: bool = False) -> None:
        self.name = name
        #: cyclic logic locking deliberately creates combinational loops;
        #: with ``allow_cycles`` validation skips the acyclicity check
        #: (topological evaluation then only covers the acyclic region)
        self.allow_cycles = allow_cycles
        self._gates: dict[str, Gate] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._dirty = True
        self._topo: list[str] | None = None
        self._fanout: dict[str, list[str]] | None = None
        self._levels: dict[str, int] | None = None
        #: memo slot for :func:`repro.sim.optape.netlist_fingerprint`;
        #: cleared on every mutation like the other derived caches
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # construction

    def add_input(self, name: str) -> str:
        """Declare a primary-input net."""
        self._add_gate(Gate(name, GateType.INPUT))
        self._inputs.append(name)
        return name

    def add_gate(
        self, name: str, gtype: GateType | str, fanin: Sequence[str] = ()
    ) -> str:
        """Add a gate driving net ``name``.

        Fan-in nets do not need to exist yet; :meth:`validate` (or any
        derived-structure access) checks for dangling references.
        """
        if isinstance(gtype, str):
            gtype = GateType(gtype)
        if gtype is GateType.INPUT:
            return self.add_input(name)
        self._add_gate(Gate(name, gtype, tuple(fanin)))
        return name

    def _add_gate(self, gate: Gate) -> None:
        if gate.name in self._gates:
            raise NetlistError(f"duplicate driver for net {gate.name!r}")
        self._gates[gate.name] = gate
        self._invalidate()

    def set_outputs(self, names: Iterable[str]) -> None:
        """Replace the primary-output list."""
        self._outputs = list(names)
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Register an output literal under a name."""
        self._outputs.append(name)
        self._invalidate()

    def remove_gate(self, name: str) -> None:
        """Remove a gate (the caller must repair fanout references)."""
        if name not in self._gates:
            raise NetlistError(f"no such net {name!r}")
        gate = self._gates.pop(name)
        if gate.gtype is GateType.INPUT:
            self._inputs.remove(name)
        if name in self._outputs:
            self._outputs = [o for o in self._outputs if o != name]
        self._invalidate()

    def replace_gate(
        self, name: str, gtype: GateType | str, fanin: Sequence[str]
    ) -> None:
        """Replace the driver of an existing net, keeping its fanout."""
        if name not in self._gates:
            raise NetlistError(f"no such net {name!r}")
        if isinstance(gtype, str):
            gtype = GateType(gtype)
        old = self._gates[name]
        if old.gtype is GateType.INPUT and gtype is not GateType.INPUT:
            self._inputs.remove(name)
        if old.gtype is not GateType.INPUT and gtype is GateType.INPUT:
            self._inputs.append(name)
        self._gates[name] = Gate(name, gtype, tuple(fanin))
        self._invalidate()

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net everywhere (driver, fan-ins, output list)."""
        if old not in self._gates:
            raise NetlistError(f"no such net {old!r}")
        if new in self._gates:
            raise NetlistError(f"net {new!r} already exists")
        gate = self._gates.pop(old)
        self._gates[new] = Gate(new, gate.gtype, gate.fanin)
        for g in list(self._gates.values()):
            if old in g.fanin:
                self._gates[g.name] = Gate(
                    g.name, g.gtype, tuple(new if f == old else f for f in g.fanin)
                )
        self._inputs = [new if n == old else n for n in self._inputs]
        self._outputs = [new if n == old else n for n in self._outputs]
        self._invalidate()

    def fresh_name(self, prefix: str = "n") -> str:
        """Return a net name not currently in use."""
        i = len(self._gates)
        while f"{prefix}{i}" in self._gates:
            i += 1
        return f"{prefix}{i}"

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy (optionally renamed)."""
        out = Netlist(name or self.name, allow_cycles=self.allow_cycles)
        out._gates = {
            n: Gate(g.name, g.gtype, g.fanin) for n, g in self._gates.items()
        }
        out._inputs = list(self._inputs)
        out._outputs = list(self._outputs)
        return out

    # ------------------------------------------------------------------ #
    # queries

    @property
    def inputs(self) -> list[str]:
        """Primary-input names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[str]:
        """Primary-output names, in declaration order."""
        return list(self._outputs)

    @property
    def nets(self) -> list[str]:
        """All net names, in insertion order."""
        return list(self._gates)

    def gate(self, name: str) -> Gate:
        """The gate driving a net (raises NetlistError if absent)."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no such net {name!r}") from None

    def has_net(self, name: str) -> bool:
        """True if a net with this name exists."""
        return name in self._gates

    def gates(self) -> Iterator[Gate]:
        """Iterate over all gates."""
        return iter(self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def num_gates(self, count_inverters: bool = True) -> int:
        """Number of logic gates (excluding inputs and constants).

        With ``count_inverters=False``, NOT and BUF gates are excluded —
        this matches the gate-count convention of the paper's Table I
        ("number of gates without inverters").
        """
        total = 0
        for g in self._gates.values():
            if g.gtype.is_source:
                continue
            if not count_inverters and g.gtype in (GateType.NOT, GateType.BUF):
                continue
            total += 1
        return total

    # ------------------------------------------------------------------ #
    # derived structure

    def _invalidate(self) -> None:
        self._dirty = True
        self._topo = None
        self._fanout = None
        self._levels = None
        self._fingerprint = None

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets, missing outputs,
        or combinational cycles."""
        for g in self._gates.values():
            for f in g.fanin:
                if f not in self._gates:
                    raise NetlistError(
                        f"gate {g.name!r} references undefined net {f!r}"
                    )
        for o in self._outputs:
            if o not in self._gates:
                raise NetlistError(f"output {o!r} is not a defined net")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[str]:
        """Nets in topological order (fan-ins before gates). Raises on cycles."""
        if self._topo is not None:
            return self._topo
        indeg: dict[str, int] = {}
        fanout: dict[str, list[str]] = {n: [] for n in self._gates}
        for g in self._gates.values():
            indeg[g.name] = 0
        for g in self._gates.values():
            for f in g.fanin:
                if f not in self._gates:
                    raise NetlistError(
                        f"gate {g.name!r} references undefined net {f!r}"
                    )
                indeg[g.name] += 1
                fanout[f].append(g.name)
        queue = deque(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while queue:
            n = queue.popleft()
            order.append(n)
            for succ in fanout[n]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._gates):
            if not self.allow_cycles:
                cyclic = sorted(n for n, d in indeg.items() if d > 0)
                raise NetlistError(f"combinational cycle involving {cyclic[:8]}")
            # cycle-tolerant mode: append the cyclic region in name order so
            # fanout maps stay total (evaluation of that region is undefined)
            order.extend(sorted(n for n, d in indeg.items() if d > 0))
        self._topo = order
        self._fanout = fanout
        return order

    def fanout_map(self) -> Mapping[str, list[str]]:
        """Map from net name to the list of gates it feeds."""
        if self._fanout is None:
            self.topological_order()
        assert self._fanout is not None
        return self._fanout

    def levels(self) -> Mapping[str, int]:
        """Logic level of each net: inputs/constants at 0, gates at
        1 + max(level of fan-ins)."""
        if self._levels is not None:
            return self._levels
        lev: dict[str, int] = {}
        for n in self.topological_order():
            g = self._gates[n]
            if g.gtype.is_source:
                lev[n] = 0
            else:
                lev[n] = 1 + max(lev[f] for f in g.fanin)
        self._levels = lev
        return lev

    def depth(self) -> int:
        """Maximum logic level over the primary outputs (circuit delay in
        levels, the paper's delay metric)."""
        lev = self.levels()
        if not self._outputs:
            return max(lev.values(), default=0)
        return max(lev[o] for o in self._outputs)

    def transitive_fanin(self, roots: Iterable[str]) -> set[str]:
        """All nets in the input cone of ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = [r for r in roots]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(self.gate(n).fanin)
        return seen

    def transitive_fanout(self, roots: Iterable[str]) -> set[str]:
        """All nets in the output cone of ``roots`` (inclusive)."""
        fan = self.fanout_map()
        seen: set[str] = set()
        stack = [r for r in roots]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(fan[n])
        return seen

    # ------------------------------------------------------------------ #
    # evaluation (scalar reference semantics; fast path lives in repro.sim)

    def evaluate(self, assignment: Mapping[str, int]) -> dict[str, int]:
        """Evaluate every net given primary-input values.

        This is the slow, obviously-correct reference evaluator used by
        tests; use :mod:`repro.sim` for bulk simulation.
        """
        values: dict[str, int] = {}
        for n in self.topological_order():
            g = self._gates[n]
            if g.gtype is GateType.INPUT:
                if n not in assignment:
                    raise NetlistError(f"missing value for input {n!r}")
                values[n] = int(bool(assignment[n]))
            else:
                values[n] = evaluate_gate(g.gtype, [values[f] for f in g.fanin])
        return values

    def evaluate_outputs(self, assignment: Mapping[str, int]) -> dict[str, int]:
        """Evaluate and return only the primary-output values."""
        values = self.evaluate(assignment)
        return {o: values[o] for o in self._outputs}

    # ------------------------------------------------------------------ #
    # cleanup passes

    def prune_dangling(self, keep: Iterable[str] = ()) -> int:
        """Remove gates that feed neither an output nor a kept net.

        Returns the number of gates removed.  Primary inputs are never
        removed (the interface is part of the contract).
        """
        keep_set = set(keep) | set(self._outputs)
        live = self.transitive_fanin(k for k in keep_set if k in self._gates)
        removed = 0
        for n in list(self._gates):
            g = self._gates[n]
            if n not in live and g.gtype is not GateType.INPUT:
                del self._gates[n]
                removed += 1
        if removed:
            self._invalidate()
        return removed

    def map_nets(self, fn: Callable[[str], str], name: str | None = None) -> "Netlist":
        """Return a copy with every net renamed through ``fn``."""
        out = Netlist(name or self.name)
        for n, g in self._gates.items():
            out._gates[fn(n)] = Gate(fn(n), g.gtype, tuple(fn(f) for f in g.fanin))
        out._inputs = [fn(n) for n in self._inputs]
        out._outputs = [fn(n) for n in self._outputs]
        return out

    def stats(self) -> dict[str, int]:
        """Summary statistics used by reports and benches."""
        by_type: dict[str, int] = {}
        for g in self._gates.values():
            by_type[g.gtype.value] = by_type.get(g.gtype.value, 0) + 1
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "nets": len(self._gates),
            "gates": self.num_gates(),
            "gates_no_inv": self.num_gates(count_inverters=False),
            "depth": self.depth(),
            **{f"n_{k}": v for k, v in sorted(by_type.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, nets={len(self._gates)})"
        )
