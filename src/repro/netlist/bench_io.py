"""Reader/writer for the ISCAS/ITC BENCH netlist format.

The BENCH dialect accepted here is the one used by the ISCAS'85/'89 and
ITC'99 distributions::

    # comment
    INPUT(a)
    OUTPUT(y)
    g1 = NAND(a, b)
    q  = DFF(d)

``DFF`` lines produce a :class:`~repro.netlist.sequential.SequentialCircuit`
whose combinational core treats each DFF output as a pseudo-primary input
and each DFF data net as a pseudo-primary output (standard full-scan view).
"""

from __future__ import annotations

import re
from pathlib import Path

from .gates import BENCH_TYPES
from .netlist import Netlist, NetlistError
from .sequential import FlipFlop, SequentialCircuit

_LINE_RE = re.compile(
    r"^\s*(?P<lhs>[\w.\[\]$/]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[\w.\[\]$/]+)\)\s*$")


class NetlistFormatError(NetlistError):
    """A malformed BENCH file, reported with file/line context.

    Subclasses :class:`NetlistError` so existing ``except NetlistError``
    handlers keep working.  Attributes:

    * ``source`` — filename (or label) of the text being parsed;
    * ``line_no`` — 1-based line number of the offending line, ``0`` when
      the problem spans the whole file (e.g. an undeclared output);
    * ``line`` — the offending source line, stripped.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str = "<string>",
        line_no: int = 0,
        line: str = "",
    ) -> None:
        prefix = f"{source}:{line_no}: " if line_no else f"{source}: "
        super().__init__(prefix + message)
        self.source = source
        self.line_no = line_no
        self.line = line


def parse_bench(
    text: str, name: str = "bench", source: str | None = None
) -> SequentialCircuit:
    """Parse BENCH text into a sequential circuit (flop list may be empty).

    For a purely combinational file the result has no flip-flops and
    ``result.core`` is the whole circuit.  Malformed input raises
    :class:`NetlistFormatError` naming ``source`` (defaults to ``name``)
    and the offending line.
    """
    src = source if source is not None else name
    core = Netlist(name)
    outputs: list[str] = []
    flops: list[tuple[str, str]] = []  # (q, d)
    defined_at: dict[str, tuple[int, str]] = {}  # net -> (line_no, line)

    def fail(message: str, line_no: int = 0, line: str = "") -> NetlistFormatError:
        return NetlistFormatError(message, source=src, line_no=line_no, line=line)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = _IO_RE.match(line)
        if io:
            if io.group("kind") == "INPUT":
                net = io.group("name")
                if net in defined_at:
                    raise fail(
                        f"net {net!r} already defined on line "
                        f"{defined_at[net][0]}",
                        line_no,
                        line,
                    )
                core.add_input(net)
                defined_at[net] = (line_no, line)
            else:
                outputs.append(io.group("name"))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise fail(f"unparseable BENCH line: {raw.strip()!r}", line_no, line)
        lhs = m.group("lhs")
        op = m.group("op").upper()
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if lhs in defined_at:
            raise fail(
                f"net {lhs!r} already defined on line {defined_at[lhs][0]}",
                line_no,
                line,
            )
        if op == "DFF":
            if len(args) != 1:
                raise fail(
                    f"DFF {lhs!r} must have exactly one input, got {len(args)}",
                    line_no,
                    line,
                )
            flops.append((lhs, args[0]))
            core.add_input(lhs)  # Q net is a pseudo-primary input of the core
        elif op in BENCH_TYPES:
            try:
                core.add_gate(lhs, BENCH_TYPES[op], args)
            except NetlistError as exc:
                raise fail(str(exc), line_no, line) from exc
        else:
            raise fail(f"unknown BENCH gate type {op!r}", line_no, line)
        defined_at[lhs] = (line_no, line)

    # report undefined fan-ins against the line that referenced them
    for lhs, (line_no, line) in defined_at.items():
        if not core.has_net(lhs):
            continue
        for fi in core.gate(lhs).fanin:
            if not core.has_net(fi):
                raise fail(
                    f"gate {lhs!r} uses undefined net {fi!r}", line_no, line
                )
    for o in outputs:
        if not core.has_net(o):
            raise fail(f"OUTPUT({o}) names an undefined net")
    for q, d in flops:
        if not core.has_net(d):
            raise fail(f"DFF {q!r} uses undefined net {d!r}")

    core.set_outputs(outputs + [d for _, d in flops])
    circuit = SequentialCircuit(core, name=name)
    for i, (q, d) in enumerate(flops):
        circuit.add_flop(FlipFlop(f"ff_{q}", d=d, q=q))
    # true primary outputs were listed first; pseudo-outputs appended
    circuit.core.set_outputs(outputs + [d for _, d in flops])
    try:
        circuit.validate()
    except NetlistError as exc:
        raise fail(str(exc)) from exc
    return circuit


def parse_bench_combinational(
    text: str, name: str = "bench", source: str | None = None
) -> Netlist:
    """Parse BENCH text that must be purely combinational."""
    circuit = parse_bench(text, name, source=source)
    if circuit.flops:
        raise NetlistFormatError(
            "file contains DFFs; use parse_bench()",
            source=source if source is not None else name,
        )
    return circuit.core


def load_bench(path: str | Path) -> SequentialCircuit:
    """Parse a BENCH file from disk (errors carry the file path)."""
    p = Path(path)
    return parse_bench(p.read_text(), name=p.stem, source=str(p))


def write_bench(circuit: SequentialCircuit | Netlist) -> str:
    """Serialize a circuit to BENCH text."""
    if isinstance(circuit, Netlist):
        circuit = SequentialCircuit(circuit, name=circuit.name)
    core = circuit.core
    qs = {ff.q: ff for ff in circuit.flops}
    ds = {ff.d for ff in circuit.flops}
    lines = [f"# {circuit.name}"]
    for i in core.inputs:
        if i not in qs:
            lines.append(f"INPUT({i})")
    for o in core.outputs:
        if o not in ds:
            lines.append(f"OUTPUT({o})")
    for ff in circuit.flops:
        lines.append(f"{ff.q} = DFF({ff.d})")
    for n in core.topological_order():
        g = core.gate(n)
        if g.gtype.is_source:
            if g.gtype.value.startswith("const"):
                lines.append(f"{n} = {g.gtype.value.upper()}()")
            continue
        op = {"not": "NOT", "buf": "BUFF"}.get(g.gtype.value, g.gtype.value.upper())
        lines.append(f"{n} = {op}({', '.join(g.fanin)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: SequentialCircuit | Netlist, path: str | Path) -> None:
    """Write BENCH text to a file."""
    Path(path).write_text(write_bench(circuit))
