"""Reader/writer for the ISCAS/ITC BENCH netlist format.

The BENCH dialect accepted here is the one used by the ISCAS'85/'89 and
ITC'99 distributions::

    # comment
    INPUT(a)
    OUTPUT(y)
    g1 = NAND(a, b)
    q  = DFF(d)

``DFF`` lines produce a :class:`~repro.netlist.sequential.SequentialCircuit`
whose combinational core treats each DFF output as a pseudo-primary input
and each DFF data net as a pseudo-primary output (standard full-scan view).
"""

from __future__ import annotations

import re
from pathlib import Path

from .gates import BENCH_TYPES
from .netlist import Netlist, NetlistError
from .sequential import FlipFlop, SequentialCircuit

_LINE_RE = re.compile(
    r"^\s*(?P<lhs>[\w.\[\]$/]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[\w.\[\]$/]+)\)\s*$")


def parse_bench(text: str, name: str = "bench") -> SequentialCircuit:
    """Parse BENCH text into a sequential circuit (flop list may be empty).

    For a purely combinational file the result has no flip-flops and
    ``result.core`` is the whole circuit.
    """
    core = Netlist(name)
    outputs: list[str] = []
    flops: list[tuple[str, str]] = []  # (q, d)
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = _IO_RE.match(line)
        if io:
            if io.group("kind") == "INPUT":
                core.add_input(io.group("name"))
            else:
                outputs.append(io.group("name"))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise NetlistError(f"unparseable BENCH line: {raw!r}")
        lhs = m.group("lhs")
        op = m.group("op").upper()
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if op == "DFF":
            if len(args) != 1:
                raise NetlistError(f"DFF {lhs!r} must have exactly one input")
            flops.append((lhs, args[0]))
            core.add_input(lhs)  # Q net is a pseudo-primary input of the core
        elif op in BENCH_TYPES:
            core.add_gate(lhs, BENCH_TYPES[op], args)
        else:
            raise NetlistError(f"unknown BENCH gate type {op!r}")
    core.set_outputs(outputs + [d for _, d in flops])
    circuit = SequentialCircuit(core, name=name)
    for i, (q, d) in enumerate(flops):
        circuit.add_flop(FlipFlop(f"ff_{q}", d=d, q=q))
    # true primary outputs were listed first; pseudo-outputs appended
    circuit.core.set_outputs(outputs + [d for _, d in flops])
    circuit.validate()
    return circuit


def parse_bench_combinational(text: str, name: str = "bench") -> Netlist:
    """Parse BENCH text that must be purely combinational."""
    circuit = parse_bench(text, name)
    if circuit.flops:
        raise NetlistError("file contains DFFs; use parse_bench()")
    return circuit.core


def load_bench(path: str | Path) -> SequentialCircuit:
    """Parse a BENCH file from disk."""
    p = Path(path)
    return parse_bench(p.read_text(), name=p.stem)


def write_bench(circuit: SequentialCircuit | Netlist) -> str:
    """Serialize a circuit to BENCH text."""
    if isinstance(circuit, Netlist):
        circuit = SequentialCircuit(circuit, name=circuit.name)
    core = circuit.core
    qs = {ff.q: ff for ff in circuit.flops}
    ds = {ff.d for ff in circuit.flops}
    lines = [f"# {circuit.name}"]
    for i in core.inputs:
        if i not in qs:
            lines.append(f"INPUT({i})")
    for o in core.outputs:
        if o not in ds:
            lines.append(f"OUTPUT({o})")
    for ff in circuit.flops:
        lines.append(f"{ff.q} = DFF({ff.d})")
    for n in core.topological_order():
        g = core.gate(n)
        if g.gtype.is_source:
            if g.gtype.value.startswith("const"):
                lines.append(f"{n} = {g.gtype.value.upper()}()")
            continue
        op = {"not": "NOT", "buf": "BUFF"}.get(g.gtype.value, g.gtype.value.upper())
        lines.append(f"{n} = {op}({', '.join(g.fanin)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: SequentialCircuit | Netlist, path: str | Path) -> None:
    """Write BENCH text to a file."""
    Path(path).write_text(write_bench(circuit))
