"""Reader/writer for the ISCAS/ITC BENCH netlist format.

The BENCH dialect accepted here is the one used by the ISCAS'85/'89 and
ITC'99 distributions::

    # comment
    INPUT(a)
    OUTPUT(y)
    g1 = NAND(a, b)
    q  = DFF(d)

``DFF`` lines produce a :class:`~repro.netlist.sequential.SequentialCircuit`
whose combinational core treats each DFF output as a pseudo-primary input
and each DFF data net as a pseudo-primary output (standard full-scan view).
"""

from __future__ import annotations

from pathlib import Path

from .netlist import Netlist, NetlistError
from .sequential import SequentialCircuit


class NetlistFormatError(NetlistError):
    """A malformed BENCH file, reported with file/line context.

    Subclasses :class:`NetlistError` so existing ``except NetlistError``
    handlers keep working.  Attributes:

    * ``source`` — filename (or label) of the text being parsed;
    * ``line_no`` — 1-based line number of the offending line, ``0`` when
      the problem spans the whole file (e.g. an undeclared output);
    * ``line`` — the offending source line, stripped.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str = "<string>",
        line_no: int = 0,
        line: str = "",
    ) -> None:
        prefix = f"{source}:{line_no}: " if line_no else f"{source}: "
        super().__init__(prefix + message)
        self.source = source
        self.line_no = line_no
        self.line = line


def parse_bench(
    text: str, name: str = "bench", source: str | None = None
) -> SequentialCircuit:
    """Parse BENCH text into a sequential circuit (flop list may be empty).

    For a purely combinational file the result has no flip-flops and
    ``result.core`` is the whole circuit.  Malformed input raises
    :class:`NetlistFormatError` naming ``source`` (defaults to ``name``)
    and the offending line.

    This is the strict view of the :mod:`repro.corpus.frontend` streaming
    scanner (imported lazily — ``repro.corpus`` imports this module for
    :class:`NetlistFormatError`): the first recovered diagnostic is
    raised, preserving the historical message/line contract.
    """
    from ..corpus.frontend import parse_bench_strict

    return parse_bench_strict(text, name=name, source=source)


def parse_bench_combinational(
    text: str, name: str = "bench", source: str | None = None
) -> Netlist:
    """Parse BENCH text that must be purely combinational."""
    circuit = parse_bench(text, name, source=source)
    if circuit.flops:
        raise NetlistFormatError(
            "file contains DFFs; use parse_bench()",
            source=source if source is not None else name,
        )
    return circuit.core


def load_bench(path: str | Path) -> SequentialCircuit:
    """Parse a BENCH file from disk, streamed (errors carry the path)."""
    from ..corpus.frontend import load_bench_streaming

    return load_bench_streaming(path).raise_first()


def write_bench(circuit: SequentialCircuit | Netlist) -> str:
    """Serialize a circuit to BENCH text."""
    if isinstance(circuit, Netlist):
        circuit = SequentialCircuit(circuit, name=circuit.name)
    core = circuit.core
    qs = {ff.q: ff for ff in circuit.flops}
    ds = {ff.d for ff in circuit.flops}
    lines = [f"# {circuit.name}"]
    for i in core.inputs:
        if i not in qs:
            lines.append(f"INPUT({i})")
    for o in core.outputs:
        if o not in ds:
            lines.append(f"OUTPUT({o})")
    for ff in circuit.flops:
        lines.append(f"{ff.q} = DFF({ff.d})")
    for n in core.topological_order():
        g = core.gate(n)
        if g.gtype.is_source:
            if g.gtype.value.startswith("const"):
                lines.append(f"{n} = {g.gtype.value.upper()}()")
            continue
        op = {"not": "NOT", "buf": "BUFF"}.get(g.gtype.value, g.gtype.value.upper())
        lines.append(f"{n} = {op}({', '.join(g.fanin)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: SequentialCircuit | Netlist, path: str | Path) -> None:
    """Write BENCH text to a file."""
    Path(path).write_text(write_bench(circuit))
