"""``repro cache {stats,clear,verify}`` — result-cache maintenance.

* ``stats`` — occupancy, per-kind entry counts, size bound (``--format
  json`` for machine consumption; CI's warm-cache gate parses it);
* ``clear`` — drop every entry and the index log;
* ``verify`` — audit the store: parse every entry, re-check its digest
  filing and payload checksum, and reconcile the append-only index
  against the directory scan.  Exits 1 when any problem is found, which
  is what makes tampering visible in CI.
"""

from __future__ import annotations

import json

from .store import DEFAULT_CACHE_ROOT, DEFAULT_MAX_BYTES, ResultCache


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(value)} B"  # pragma: no cover - unreachable


def run_cache_cli(
    action: str,
    root: str = DEFAULT_CACHE_ROOT,
    fmt: str = "text",
) -> int:
    """CLI driver for ``repro cache {stats,clear,verify}``."""
    cache = ResultCache(root, max_bytes=DEFAULT_MAX_BYTES)
    if action == "stats":
        stats = cache.stats()
        if fmt == "json":
            print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"result cache — {stats.root}")
        print(f"  entries      {stats.entries}")
        print(
            f"  size         {_human_bytes(stats.total_bytes)}"
            + (
                f" (bound {_human_bytes(stats.max_bytes)})"
                if stats.max_bytes is not None
                else ""
            )
        )
        for kind, count in sorted(stats.by_kind.items()):
            print(f"  kind {kind:<20} {count}")
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    if action == "verify":
        problems = cache.verify()
        if not problems:
            print(
                f"ok: {cache.root} ({len(cache)} entries, "
                "digests+checksums+index consistent)"
            )
            return 0
        for problem in problems:
            print(problem)
        print(f"INVALID: {len(problems)} problem(s)")
        return 1
    print(f"error: unknown cache action {action!r}")
    return 2
