"""Content-addressed result cache: never recompute an identical row.

The heaviest cost in every campaign re-run is recomputing experiment
rows and attack results whose inputs — netlist content, scheme
parameters, attack config, seed — have not changed.  This package is
the durable memoization layer that removes that waste:

* :mod:`repro.cache.keys` — cache-key derivation (blake2b over netlist
  structure hashes, dataclass config fields, seeds, and per-module
  ``CACHE_VERSION`` salts);
* :mod:`repro.cache.store` — the disk store (atomic writes, paranoid
  reads, append-only index, size-bounded LRU eviction, multiprocess
  safe);
* this module — the **active cache**: process-global like
  :mod:`repro.telemetry`, disabled by default, enabled by
  :func:`configure` (which the ``--cache`` CLI flags and
  ``RunPolicy.cache_dir`` call).  Instrumented call sites —
  ``ExperimentRunner.run_rows``, :func:`repro.attacks.api.run_attack`,
  :func:`repro.sim.metrics.measure_corruption` — consult
  :func:`active` and skip caching entirely when it returns None, so the
  cold path costs one module-attribute read.

See ``docs/CACHING.md`` for key-derivation and invalidation rules.
"""

from __future__ import annotations

import os

from .keys import CacheKey, Uncacheable, cache_key, normalize
from .store import (
    CACHE_FORMAT,
    DEFAULT_CACHE_ROOT,
    DEFAULT_MAX_BYTES,
    CacheStats,
    ResultCache,
)

_active: ResultCache | None = None


def configure(
    root: str | os.PathLike = DEFAULT_CACHE_ROOT,
    max_bytes: int | None = DEFAULT_MAX_BYTES,
) -> ResultCache:
    """Enable the process-global result cache rooted at ``root``.

    Re-configuring with the same root reuses the existing instance (so
    session hit/miss counters survive); a different root replaces it.
    Worker processes call this on entry (via ``RunPolicy.cache_dir``)
    the same way they join the telemetry trace.
    """
    global _active
    if _active is not None and str(_active.root) == str(root):
        _active.max_bytes = max_bytes
        return _active
    _active = ResultCache(root, max_bytes=max_bytes)
    return _active


def active() -> ResultCache | None:
    """The process-global cache, or None when caching is disabled."""
    return _active


def disable() -> None:
    """Disable the process-global cache (entries stay on disk)."""
    global _active
    _active = None


__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_CACHE_ROOT",
    "DEFAULT_MAX_BYTES",
    "CacheKey",
    "CacheStats",
    "ResultCache",
    "Uncacheable",
    "active",
    "cache_key",
    "configure",
    "disable",
    "normalize",
]
