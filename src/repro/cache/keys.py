"""Cache-key derivation: content-addressing for experiment inputs.

A cache key must change exactly when the result could change.  The
digest therefore covers, for every part the caller passes:

* **netlists by content, not identity** — a :class:`~repro.netlist.Netlist`
  normalizes to its :func:`~repro.sim.optape.netlist_fingerprint` (the
  same blake2b structure hash the op-tape compile cache uses), so two
  regenerated-but-identical circuits share entries while a single gate
  edit invalidates them;
* **schemes and configs by field** — dataclasses normalize to their
  qualified type name plus every field value, so changing any config
  knob (or renaming the class) produces a fresh key;
* **a per-module version salt** — every caching call site passes
  ``salt=f"{module}/{CACHE_VERSION}"``; bumping that module's
  ``CACHE_VERSION`` when its semantics change auto-invalidates all of
  its entries without touching anyone else's.

Objects with runtime identity but no stable content (open oracles over
physical chips, callables, arbitrary class instances) raise
:class:`Uncacheable`; call sites catch it and silently skip caching —
an exotic input degrades to "not cached", never to a wrong hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any

from ..runtime.budget import Budget
from ..runtime.codec import canonical_dumps

#: bytes of blake2b digest per key (32 hex chars — filename-friendly,
#: collision-safe for any realistic campaign volume)
_DIGEST_SIZE = 16


class Uncacheable(TypeError):
    """An input has no stable content representation; skip caching."""


@dataclass(frozen=True)
class CacheKey:
    """A derived cache key: the digest plus its human-readable recipe.

    Attributes:
        digest: hex blake2b over the canonical key material — the
            content address (and entry filename) in the store.
        kind: namespace of the producing call site
            (``"experiment.row"``, ``"attack.run"``, ``"sim.corruption"``).
        description: the normalized key material itself, persisted
            alongside the payload so ``repro cache verify`` (and humans)
            can audit what an entry claims to be.
    """

    digest: str
    kind: str
    description: dict[str, Any]


def normalize(obj: Any) -> Any:
    """Reduce an input to canonical JSON-able key material.

    Handles primitives, sequences, string-keyed mappings, dataclasses
    (type-qualified), :class:`Budget` (caps only — its consumed state is
    runtime progress, not an input), netlists and locked circuits (by
    structure hash), and oracles over netlists.  Raises
    :class:`Uncacheable` for anything else.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, (list, tuple)):
        return [normalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        try:
            ordered = sorted(obj)
        except TypeError as exc:
            raise Uncacheable(f"unorderable set in cache key: {obj!r}") from exc
        return {"__set__": [normalize(v) for v in ordered]}
    if isinstance(obj, dict):
        out = {}
        for k in sorted(obj, key=str):
            if not isinstance(k, str):
                raise Uncacheable(
                    f"non-string mapping key in cache key: {k!r}"
                )
            out[k] = normalize(obj[k])
        return out
    if isinstance(obj, Budget):
        return {
            "__budget__": {
                "wall_s": obj.wall_s,
                "max_conflicts": obj.max_conflicts,
                "max_backtracks": obj.max_backtracks,
                "max_patterns": obj.max_patterns,
            }
        }
    # Netlist / LockedCircuit / oracles — imported lazily to keep this
    # module import-light (it is pulled in by runtime-adjacent layers).
    from ..netlist import Netlist

    if isinstance(obj, Netlist):
        from ..sim.optape import netlist_fingerprint

        return {"__netlist__": netlist_fingerprint(obj)}
    from ..locking import LockedCircuit

    if isinstance(obj, LockedCircuit):
        from ..sim.optape import netlist_fingerprint

        return {
            "__locked_circuit__": {
                "scheme": obj.scheme,
                "locked": netlist_fingerprint(obj.locked),
                "original": netlist_fingerprint(obj.original),
                "key_inputs": list(obj.key_inputs),
                "correct_key": [
                    int(obj.correct_key[k]) for k in obj.key_inputs
                ],
                "key_gate_nets": list(obj.key_gate_nets),
                "extra": _normalize_extra(obj.extra),
            }
        }
    oracle = _normalize_oracle(obj)
    if oracle is not None:
        return oracle
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: normalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, "fields": fields}
    raise Uncacheable(
        f"cannot derive stable cache-key material from "
        f"{type(obj).__qualname__} instance"
    )


def _normalize_extra(extra: dict[str, Any]) -> Any:
    """LockedCircuit.extra may hold netlist-valued metadata; recurse,
    replacing anything uncacheable with a type marker (the scheme name
    and structure hashes already pin the circuit's identity)."""
    out = {}
    for k in sorted(extra, key=str):
        try:
            out[str(k)] = normalize(extra[k])
        except Uncacheable:
            out[str(k)] = {"__opaque__": type(extra[k]).__qualname__}
    return out


def _normalize_oracle(obj: Any) -> Any | None:
    """Normalize the known oracle types; None when ``obj`` is not one.

    An oracle's responses are fully determined by its underlying model,
    so that is what gets hashed.  Oracles over stateful chips
    (:class:`~repro.attacks.oracle.ScanOracle`) are deliberately
    *uncacheable*: their behaviour depends on protocol state we do not
    model in the key.
    """
    from ..attacks.oracle import CountingOracle, IdealOracle, ScanOracle
    from ..sim.optape import netlist_fingerprint

    if isinstance(obj, IdealOracle):
        return {"__oracle__": "IdealOracle",
                "netlist": netlist_fingerprint(obj.netlist)}
    if isinstance(obj, CountingOracle):
        inner = _normalize_oracle(obj.inner)
        if inner is None:
            raise Uncacheable(
                f"CountingOracle wraps uncacheable "
                f"{type(obj.inner).__qualname__}"
            )
        return {"__oracle__": "CountingOracle", "inner": inner,
                "max_queries": obj.max_queries}
    if isinstance(obj, ScanOracle):
        raise Uncacheable(
            "ScanOracle responses depend on chip protocol state; refusing "
            "to cache attack results measured through one"
        )
    return None


def cache_key(kind: str, salt: str, **parts: Any) -> CacheKey:
    """Derive the :class:`CacheKey` for one cacheable computation.

    Args:
        kind: call-site namespace (becomes part of the digest and the
            entry metadata).
        salt: version salt, conventionally ``f"{module}/{CACHE_VERSION}"``
            — bump the module's ``CACHE_VERSION`` to invalidate every
            entry it ever wrote.
        **parts: the inputs that determine the result; each is
            normalized via :func:`normalize` (raises
            :class:`Uncacheable` when any part has no stable content).
    """
    description = {
        "kind": kind,
        "salt": salt,
        "parts": {name: normalize(value) for name, value in parts.items()},
    }
    material = canonical_dumps(description)
    digest = hashlib.blake2b(
        material.encode("utf-8"), digest_size=_DIGEST_SIZE
    ).hexdigest()
    return CacheKey(digest=digest, kind=kind, description=description)
