"""Disk-backed, content-addressed result store.

Layout (everything under one root, default ``.repro-cache/``)::

    <root>/
        VERSION               # on-disk format number (mismatch = wipe)
        index.jsonl           # append-only event log (insert/evict/clear)
        entries/<dg[:2]>/<digest>.json   # one entry per cache key

Each entry file is a self-describing envelope: the format number, the
key's digest *and* its full human-readable recipe (so ``repro cache
verify`` can audit what an entry claims to be), a checksum over the
canonical payload bytes (tamper/bit-rot detection), and the payload
itself.  Entry writes go through the shared
:mod:`repro.runtime.codec` atomic-write path, and the index is an
O_APPEND single-``write`` JSONL log, so any number of ``--jobs``
worker processes can insert concurrently: the worst race is two
processes computing the same row and replacing each other's identical
entry.

Reads are paranoid: a truncated, corrupted, or tampered entry degrades
to a **miss** (and is unlinked so the slot heals on the next insert) —
never to an exception, never to trusted garbage.

Eviction is size-bounded LRU: a hit bumps the entry's mtime, and when
the store grows past ``max_bytes`` the oldest-mtime entries are deleted
until it fits.  Every lookup emits ``cache.hit``/``cache.miss``
telemetry counters under a ``cache.lookup`` span; evictions charge
``cache.evict``.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from .. import telemetry
from ..runtime.codec import (
    CodecError,
    atomic_write_text,
    canonical_dumps,
    read_json,
)
from .keys import CacheKey, _DIGEST_SIZE
import hashlib

#: on-disk format; bumping it wipes (rather than misreads) old stores
CACHE_FORMAT = 1

#: default cache root, relative to the CWD (sibling of .repro-checkpoints)
DEFAULT_CACHE_ROOT = ".repro-cache"

#: default size bound — generous for row dicts (a full E1-E5 campaign's
#: entries are a few MiB), small enough to forget about
DEFAULT_MAX_BYTES = 512 << 20


def _value_checksum(payload: Any) -> str:
    """Checksum over the canonical payload bytes (tamper detection)."""
    return hashlib.blake2b(
        canonical_dumps(payload).encode("utf-8"), digest_size=_DIGEST_SIZE
    ).hexdigest()


@dataclass
class CacheStats:
    """One snapshot of a store plus this process's session counters."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    max_bytes: int | None = None
    by_kind: dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0
    degraded: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view (CLI output)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "by_kind": dict(sorted(self.by_kind.items())),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corrupt_dropped": self.corrupt_dropped,
                "degraded": self.degraded,
            },
        }


class ResultCache:
    """Content-addressed result store with LRU size bounding."""

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_ROOT,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "index.jsonl"
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        #: write path disabled after ENOSPC/EROFS — reads keep serving
        self.degraded = False
        self._check_format()

    def _degrade(self, op: str, exc: OSError) -> None:
        """Disable the write path for the rest of the run (reads stay).

        A full or read-only disk must cost the campaign its cache, not
        its rows: every later :meth:`put` becomes a silent no-op, while
        :meth:`get` keeps serving whatever was written before the fault
        (correct even on a read-only filesystem).
        """
        if self.degraded:
            return
        self.degraded = True
        telemetry.counter_add("cache.degraded")
        warnings.warn(
            f"result cache degraded to read-only after {op} failed "
            f"({exc}); rows will be recomputed instead of cached",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------ #
    # format guard

    def _check_format(self) -> None:
        """Wipe stores written by an incompatible on-disk format."""
        version_file = self.root / "VERSION"
        try:
            stored = int(version_file.read_text().strip())
        except (FileNotFoundError, ValueError):
            stored = None
        if stored is not None and stored != CACHE_FORMAT:
            self.clear()
        if stored != CACHE_FORMAT:
            atomic_write_text(version_file, f"{CACHE_FORMAT}\n")

    # ------------------------------------------------------------------ #
    # paths and scanning

    def entry_path(self, digest: str) -> Path:
        """Filesystem location of one digest's entry."""
        return self.entries_dir / digest[:2] / f"{digest}.json"

    def iter_entries(self) -> Iterator[tuple[str, Path, os.stat_result]]:
        """Yield ``(digest, path, stat)`` for every entry on disk.

        Entries deleted concurrently (eviction in another process) are
        skipped silently.
        """
        for path in sorted(self.entries_dir.glob("*/*.json")):
            try:
                st = path.stat()
            except OSError:
                continue
            yield path.stem, path, st

    def total_bytes(self) -> int:
        """Bytes currently held by entry files."""
        return sum(st.st_size for _, _, st in self.iter_entries())

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    # ------------------------------------------------------------------ #
    # lookup / insert

    def get(self, key: CacheKey) -> dict[str, Any] | None:
        """Return the cached payload for ``key``, or None on a miss.

        Corrupt or tampered entries (parse failure, digest mismatch,
        value-checksum mismatch) count as misses and are unlinked so the
        slot heals on the next insert.
        """
        path = self.entry_path(key.digest)
        with telemetry.span("cache.lookup", kind=key.kind) as sp:
            envelope: dict[str, Any] | None
            try:
                envelope = read_json(path)
            except CodecError:
                envelope = None
                self._drop_corrupt(path, key.digest)
            payload = self._validate(envelope, key.digest)
            if payload is None:
                if envelope is not None:
                    self._drop_corrupt(path, key.digest)
                self.misses += 1
                telemetry.counter_add("cache.miss")
                sp.set(hit=False)
                return None
            try:
                # LRU recency: a hit makes the entry young again
                os.utime(path, None)
            except OSError:
                pass
            self.hits += 1
            telemetry.counter_add("cache.hit")
            sp.set(hit=True)
            return payload

    def _validate(
        self, envelope: dict[str, Any] | None, digest: str
    ) -> dict[str, Any] | None:
        """The envelope checks shared by :meth:`get` and :meth:`verify`."""
        if envelope is None:
            return None
        if envelope.get("format") != CACHE_FORMAT:
            return None
        if envelope.get("digest") != digest:
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return None
        if envelope.get("value_checksum") != _value_checksum(payload):
            return None
        return payload

    def _drop_corrupt(self, path: Path, digest: str) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.corrupt_dropped += 1
        self._append_index("drop-corrupt", digest)

    def put(self, key: CacheKey, payload: dict[str, Any]) -> Path | None:
        """Insert one payload under ``key``; returns the entry path.

        A payload that cannot be canonically serialized (exotic values
        smuggled into a row dict) is skipped with a None return — the
        cache never raises on the write path.  An ``OSError`` (disk
        full, read-only filesystem) degrades the whole write path via
        :meth:`_degrade` instead of failing the row.
        """
        if self.degraded:
            return None
        envelope = {
            "format": CACHE_FORMAT,
            "kind": key.kind,
            "digest": key.digest,
            "key": key.description,
            "value_checksum": None,
            "payload": payload,
            "created": time.time(),
        }
        try:
            envelope["value_checksum"] = _value_checksum(payload)
            text = canonical_dumps(envelope)
        except (TypeError, ValueError):
            return None
        path = self.entry_path(key.digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text, fault_site="cache.put")
        except OSError as exc:
            self._degrade("entry write", exc)
            return None
        self._append_index("insert", key.digest, kind=key.kind,
                           bytes=len(text))
        self._maybe_evict()
        return path

    # ------------------------------------------------------------------ #
    # index log

    def _append_index(self, op: str, digest: str, **extra: Any) -> None:
        """Append one event line (single O_APPEND write: safe for many
        concurrent worker processes).  An ``OSError`` here (disk full
        mid-campaign) degrades the write path rather than failing the
        caller."""
        if self.degraded:
            return
        record = {"op": op, "digest": digest, "ts": time.time(),
                  "pid": os.getpid(), **extra}
        line = (canonical_dumps(record) + "\n").encode("utf-8")
        try:
            fd = os.open(
                self._index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError as exc:
            self._degrade("index append", exc)

    def index_events(self) -> Iterator[dict[str, Any]]:
        """Parse the index log, skipping torn/corrupt lines."""
        import json

        try:
            fh = open(self._index_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    yield record

    def _live_set_from_index(self) -> set[str]:
        """Digests the index log says should currently be on disk."""
        live: set[str] = set()
        for ev in self.index_events():
            op = ev.get("op")
            digest = ev.get("digest")
            if op == "insert" and isinstance(digest, str):
                live.add(digest)
            elif op in ("evict", "drop-corrupt") and isinstance(digest, str):
                live.discard(digest)
            elif op == "clear":
                live.clear()
        return live

    # ------------------------------------------------------------------ #
    # eviction / clearing

    def _maybe_evict(self) -> None:
        if self.max_bytes is None:
            return
        entries = list(self.iter_entries())
        total = sum(st.st_size for _, _, st in entries)
        if total <= self.max_bytes:
            return
        # oldest-mtime first: hits refresh mtime, so this is LRU
        entries.sort(key=lambda e: e[2].st_mtime)
        for digest, path, st in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            self.evictions += 1
            telemetry.counter_add("cache.evict")
            self._append_index("evict", digest, bytes=st.st_size)

    def clear(self) -> int:
        """Delete every entry (and the index log); returns entries removed."""
        removed = 0
        for _digest, path, _st in list(self.iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for stray in self.entries_dir.glob("*/.*.json.tmp"):
            try:
                stray.unlink()
            except OSError:
                pass
        try:
            self._index_path.unlink()
        except OSError:
            pass
        return removed

    # ------------------------------------------------------------------ #
    # introspection

    def stats(self) -> CacheStats:
        """Scan the store and report occupancy plus session counters."""
        by_kind: dict[str, int] = {}
        entries = 0
        total = 0
        for _digest, path, st in self.iter_entries():
            entries += 1
            total += st.st_size
            try:
                envelope = read_json(path)
            except CodecError:
                kind = "<corrupt>"
            else:
                kind = str((envelope or {}).get("kind", "<unknown>"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return CacheStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            max_bytes=self.max_bytes,
            by_kind=by_kind,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            corrupt_dropped=self.corrupt_dropped,
            degraded=self.degraded,
        )

    def verify(self) -> list[str]:
        """Audit every entry and the index; returns problem strings.

        Checks each entry parses, carries the current format, is filed
        under its own digest, and that its payload matches the recorded
        checksum (tampering/bit rot).  Then replays the index log and
        reports disagreements between it and the directory scan.  An
        empty list means the store is self-consistent.
        """
        problems: list[str] = []
        on_disk: set[str] = set()
        for digest, path, _st in self.iter_entries():
            on_disk.add(digest)
            try:
                envelope = read_json(path)
            except CodecError as exc:
                problems.append(f"{path}: unreadable entry ({exc})")
                continue
            if envelope is None:
                problems.append(f"{path}: entry vanished mid-verify")
                continue
            if envelope.get("format") != CACHE_FORMAT:
                problems.append(
                    f"{path}: format {envelope.get('format')!r} != "
                    f"{CACHE_FORMAT}"
                )
                continue
            if envelope.get("digest") != digest:
                problems.append(
                    f"{path}: filed under {digest} but claims digest "
                    f"{envelope.get('digest')!r}"
                )
                continue
            payload = envelope.get("payload")
            if not isinstance(payload, dict):
                problems.append(f"{path}: payload is not a dict")
                continue
            if envelope.get("value_checksum") != _value_checksum(payload):
                problems.append(
                    f"{path}: payload checksum mismatch (tampered or rotted)"
                )
        indexed = self._live_set_from_index()
        for digest in sorted(indexed - on_disk):
            problems.append(
                f"index lists {digest} but no entry file exists"
            )
        for digest in sorted(on_disk - indexed):
            problems.append(
                f"entry {digest} on disk but absent from the index log"
            )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
