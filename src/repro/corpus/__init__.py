"""Real-corpus ingestion: streaming netlist front end + benchmark manager.

``repro.corpus`` owns everything between a benchmark distribution and a
:class:`~repro.netlist.SequentialCircuit` in memory:

* :mod:`repro.corpus.frontend` — the unified streaming, error-recovering
  BENCH/Verilog parser front end (``repro.netlist.parse_bench`` and
  friends delegate here);
* :mod:`repro.corpus.manifest` — the checked-in catalog of ISCAS'85/'89
  and ITC'99 class netlists (URLs + blake2b checksums + vendored
  offline fixtures);
* :mod:`repro.corpus.store` — the content-addressed on-disk store the
  ``repro corpus`` CLI fetches into (atomic writes, paranoid reads,
  corruption healing — the :mod:`repro.cache` conventions);
* :mod:`repro.corpus.loader` — parse-once circuit handles shared by
  campaign pre-flight lint and row compute.

Import cycle note: :mod:`repro.netlist` imports this package lazily
(inside function bodies), and this package imports :mod:`repro.netlist`
at module top — that order is load-bearing, do not invert it.
"""

from __future__ import annotations

from .frontend import (
    ParseDiagnostic,
    ParseResult,
    parse_bench_recovering,
    parse_verilog_recovering,
)
from .manifest import (
    CorpusEntry,
    FAMILIES,
    OFFLINE_FAMILIES,
    entries_for,
    manifest_checksum,
)
from .store import CorpusError, CorpusStore, default_store
from .loader import CircuitHandle, load_circuit, preflight_report

__all__ = [
    "CircuitHandle",
    "CorpusEntry",
    "CorpusError",
    "CorpusStore",
    "FAMILIES",
    "OFFLINE_FAMILIES",
    "ParseDiagnostic",
    "ParseResult",
    "default_store",
    "entries_for",
    "load_circuit",
    "manifest_checksum",
    "parse_bench_recovering",
    "parse_verilog_recovering",
    "preflight_report",
]
