module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1;
  input G2;
  input G3;
  input G6;
  input G7;
  output G22;
  output G23;
  wire G10;
  wire G11;
  wire G16;
  wire G19;
  nand g0 (G10, G1, G3);
  nand g1 (G11, G3, G6);
  nand g2 (G16, G2, G11);
  nand g3 (G19, G11, G7);
  nand g4 (G22, G10, G16);
  nand g5 (G23, G16, G19);
endmodule
