"""`repro corpus` — fetch/inspect the benchmark-netlist corpus.

Thin shell over :class:`~repro.corpus.store.CorpusStore`:

* ``fetch``  — materialize families into the store (``--offline`` or
  ``REPRO_CORPUS_OFFLINE=1`` sticks to vendored fixtures, zero sockets);
* ``list``   — stored entries with origin and byte counts;
* ``verify`` — re-hash everything; vendored corruption heals in place;
* ``stats``  — occupancy per family plus the manifest checksum (the CI
  cache key for the store).
"""

from __future__ import annotations

import json
import sys

from .store import CorpusStore, default_store


def _resolve_store(corpus_dir: "str | None") -> CorpusStore:
    return CorpusStore(corpus_dir) if corpus_dir else default_store()


def run_corpus_cli(
    action: str,
    families: "list[str] | None" = None,
    offline: bool = False,
    corpus_dir: "str | None" = None,
    force: bool = False,
    fmt: str = "text",
) -> int:
    """Execute one corpus action; returns a process exit code."""
    store = _resolve_store(corpus_dir)

    if action == "fetch":
        try:
            results = store.fetch(families, offline=offline, force=force)
        except KeyError as exc:
            print(f"corpus fetch: {exc.args[0]}", file=sys.stderr)
            return 2
        failed = [r for r in results if r[1].startswith("error")]
        if fmt == "json":
            print(json.dumps(
                {"results": [
                    {"name": n, "action": a} for n, a in results
                ], "ok": not failed},
                indent=2, sort_keys=True,
            ))
        else:
            width = max((len(n) for n, _ in results), default=0)
            for name, act in results:
                print(f"  {name:<{width}}  {act}")
            print(f"{len(results) - len(failed)}/{len(results)} circuit(s) ok")
        if failed:
            for name, act in failed:
                print(f"corpus fetch: {name}: {act}", file=sys.stderr)
            return 1
        return 0

    if action == "list":
        entries = store.list_entries()
        if families:
            wanted = set(families)
            entries = [e for e in entries if e["family"] in wanted]
        if fmt == "json":
            print(json.dumps({"entries": entries}, indent=2, sort_keys=True))
        else:
            if not entries:
                print("corpus store is empty; run `repro corpus fetch`")
                return 0
            width = max(len(e["name"]) for e in entries)
            for e in entries:
                print(
                    f"  {e['name']:<{width}}  {e['family']:<14} "
                    f"{e['fmt']:<7} {e['bytes']:>8} B  {e['origin']}"
                )
            print(f"{len(entries)} circuit(s) stored")
        return 0

    if action == "verify":
        problems = store.verify()
        if fmt == "json":
            print(json.dumps(
                {"problems": problems, "ok": not problems},
                indent=2, sort_keys=True,
            ))
        else:
            for p in problems:
                print(f"  {p}")
            print("corpus verify: "
                  + ("clean" if not problems
                     else f"{len(problems)} problem(s)"))
        # healed entries are not failures; only unrecovered ones are
        return 1 if any("refetch required" in p for p in problems) else 0

    if action == "stats":
        stats = store.stats()
        if fmt == "json":
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"  root              {stats['root']}")
            print(f"  entries           {stats['entries']}")
            print(f"  bytes             {stats['bytes']}")
            for fam, n in sorted(stats["families"].items()):
                print(f"  family {fam:<11} {n}")
            print(f"  manifest checksum {stats['manifest_checksum']}")
        return 0

    print(f"repro corpus: unknown action {action!r}", file=sys.stderr)
    return 2
