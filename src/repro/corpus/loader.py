"""Parse-once circuit handles shared by pre-flight lint and row compute.

Campaign rows used to parse a netlist file twice: once in the runner's
pre-flight lint and again inside the row's compute.  This module keys a
process-global memo on ``(path, content digest)`` so each file is parsed
exactly once per process — the lint pre-flight builds its report from
the already-parsed handle, and the compute reuses the same circuit.

Counters: ``corpus.parse`` per actual parse, ``corpus.parse.cached`` per
memo hit (both validated by the telemetry schema).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .. import telemetry
from ..netlist.sequential import SequentialCircuit
from .frontend import (
    ParseDiagnostic,
    ParseResult,
    parse_bench_recovering,
    parse_verilog_recovering,
)
from .manifest import blake2b_hex
from .store import CorpusStore, default_store


@dataclass(frozen=True)
class CircuitHandle:
    """One parsed corpus circuit, memoized per process."""

    name: str
    path: str
    digest: str
    circuit: SequentialCircuit | None
    errors: tuple[ParseDiagnostic, ...]
    stats: "dict[str, int]"

    @property
    def ok(self) -> bool:
        return not self.errors and self.circuit is not None

    def require_circuit(self) -> SequentialCircuit:
        """The parsed circuit, or the first parse error as an exception."""
        if self.errors:
            raise self.errors[0].to_error()
        assert self.circuit is not None
        return self.circuit


#: (resolved path, digest) -> handle.  Per-process; pool workers build
#: their own on first use, which is exactly the parse-once guarantee
#: the pre-flight fix needs (parent lints and workers compute from the
#: same memoized object within each process).
_MEMO: dict[tuple[str, str], CircuitHandle] = {}


def _parse_file(path: Path, text: str, name: str) -> ParseResult:
    if path.suffix.lower() == ".v":
        return parse_verilog_recovering(
            text.splitlines(), name=name, source=str(path)
        )
    return parse_bench_recovering(
        text.splitlines(), name=name, source=str(path)
    )


def load_circuit(path: "str | Path", name: "str | None" = None) -> CircuitHandle:
    """Parse a netlist file once per process (recovering mode).

    The memo key includes the content digest, so an edited file is
    re-parsed while repeated loads of identical content are free.
    """
    p = Path(path).resolve()
    data = p.read_bytes()
    digest = blake2b_hex(data)
    key = (str(p), digest)
    cached = _MEMO.get(key)
    if cached is not None:
        telemetry.counter_add("corpus.parse.cached")
        return cached
    result = _parse_file(p, data.decode("utf-8", errors="replace"),
                         name or p.stem)
    handle = CircuitHandle(
        name=name or p.stem,
        path=str(p),
        digest=digest,
        circuit=result.circuit,
        errors=tuple(result.errors),
        stats=dict(result.stats),
    )
    _MEMO[key] = handle
    telemetry.counter_add("corpus.parse")
    return handle


def load_corpus_circuit(
    name: str, store: "CorpusStore | None" = None
) -> CircuitHandle:
    """Handle for a circuit held in the corpus store (verified read)."""
    s = store if store is not None else default_store()
    return load_circuit(s.path_of(name), name=name)


def corpus_digests(
    names: "list[str]", store: "CorpusStore | None" = None
) -> dict[str, str]:
    """Per-circuit content digests — campaign fingerprint material."""
    return {n: load_corpus_circuit(n, store).digest for n in names}


def preflight_report(handle: CircuitHandle):
    """Lint report for one handle, without re-parsing the file.

    Parse diagnostics flow in as IO001; when the parse was clean the
    full netlist rule set runs over the already-parsed circuit.
    """
    from ..lint.api import _subject_of
    from ..lint.diagnostics import LintReport
    from ..lint.registry import run_rules
    from ..lint.api import DEFAULT_CONFIG

    report = LintReport(subject=handle.path)
    kind = "verilog" if handle.path.endswith(".v") else "netlist"
    for diag in handle.errors:
        report.add(diag.to_lint(kind))
    if not handle.errors and handle.circuit is not None:
        run_rules(
            "netlist",
            _subject_of(handle.circuit, handle.path),
            DEFAULT_CONFIG,
            report,
        )
    return report


def clear_memo() -> None:
    """Drop the per-process memo (tests)."""
    _MEMO.clear()
