"""Parse-throughput benchmark for the corpus front end.

Writes ``BENCH_corpus.json`` (gated by ``scripts/bench_compare.py
--only corpus``):

* **per-fixture** — every vendored fixture parsed through the streaming
  front end, with line counts and wall-clock (informational: the files
  are tiny);
* **synthetic** — a deterministic generated netlist large enough for a
  stable ``lines_per_s`` figure, checked against the embedded
  ``min_lines_per_s`` floor (conservative: an order of magnitude below
  what the parser does on developer hardware, so the gate catches
  accidental quadratic behaviour, not machine variance);
* **roundtrip_match** — parse → write → reparse → write must reproduce
  the exact bytes for every BENCH fixture;
* **recovery_ok** — a deliberately malformed netlist must yield
  structured diagnostics (with line numbers) and no exception.

Usage::

    python -m repro.corpus.bench [--out BENCH_corpus.json] [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .frontend import parse_bench_recovering, parse_verilog_recovering
from .manifest import FIXTURES_DIR, entries_for

#: conservative floor for the synthetic parse (lines/second); the
#: embedded acceptance bound bench_compare gates against
MIN_LINES_PER_S = 20_000.0

#: gate count of the synthetic timing workload
_SYNTH_GATES = 4000

_BROKEN_SAMPLE = """\
# deliberately malformed
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b
z = FROB(a)
y = AND(a, b)
"""


def _parse_fixture(path: Path) -> tuple[int, float, dict]:
    """Parse one fixture; returns (lines, seconds, stats)."""
    text = path.read_text()
    lines = text.splitlines()
    start = time.perf_counter()
    if path.suffix == ".v":
        result = parse_verilog_recovering(lines, name=path.stem,
                                          source=path.name)
    else:
        result = parse_bench_recovering(lines, name=path.stem,
                                        source=path.name)
    elapsed = time.perf_counter() - start
    if result.errors:
        raise SystemExit(
            f"corpus bench: fixture {path.name} failed to parse: "
            f"{result.errors[0].format()}"
        )
    return len(lines), elapsed, dict(result.stats)


def _roundtrip_ok() -> bool:
    """parse → write → reparse → write byte-stability, every BENCH fixture."""
    from ..netlist.bench_io import parse_bench, write_bench

    for entry in entries_for(offline=True):
        if entry.fmt != "bench":
            continue
        text = (FIXTURES_DIR / entry.vendored).read_text()
        first = write_bench(parse_bench(text, name=entry.name))
        second = write_bench(parse_bench(first, name=entry.name))
        if first != second:
            return False
    return True


def _recovery_ok() -> bool:
    """Malformed input must produce located diagnostics, not exceptions."""
    try:
        result = parse_bench_recovering(
            _BROKEN_SAMPLE.splitlines(), name="broken", source="broken.bench"
        )
    except Exception:
        return False
    return (
        len(result.errors) >= 2
        and all(d.line_no > 0 for d in result.errors)
    )


def _synthetic_lines() -> list[str]:
    from ..bench import GeneratorConfig, generate_netlist
    from ..netlist.bench_io import write_bench

    netlist = generate_netlist(
        GeneratorConfig(
            n_inputs=64, n_outputs=32, n_gates=_SYNTH_GATES, depth=16,
            seed=20, name="tput",
        )
    )
    return write_bench(netlist).splitlines()


def run_corpus_bench(out: str = "BENCH_corpus.json", repeats: int = 5) -> int:
    """Measure, verify, and write the report; returns an exit code."""
    fixtures = []
    for entry in sorted(entries_for(offline=True), key=lambda e: e.name):
        path = FIXTURES_DIR / entry.vendored
        n_lines, elapsed, stats = _parse_fixture(path)
        fixtures.append({
            "name": entry.name,
            "fmt": entry.fmt,
            "lines": n_lines,
            "gates": stats.get("gates", 0),
            "parse_s": round(elapsed, 6),
        })

    lines = _synthetic_lines()
    best = min(
        _timed_parse(lines) for _ in range(max(1, repeats))
    )
    lines_per_s = len(lines) / best if best > 0 else float("inf")

    roundtrip = _roundtrip_ok()
    recovery = _recovery_ok()
    ok = roundtrip and recovery and lines_per_s >= MIN_LINES_PER_S
    report = {
        "schema": 1,
        "fixtures": fixtures,
        "synthetic": {
            "gates": _SYNTH_GATES,
            "lines": len(lines),
            "repeats": repeats,
            "best_parse_s": round(best, 6),
        },
        "lines_per_s": round(lines_per_s, 1),
        "min_lines_per_s": MIN_LINES_PER_S,
        "roundtrip_match": roundtrip,
        "recovery_ok": recovery,
        "pass": ok,
    }
    Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"corpus bench: {len(lines)} lines parsed in {best:.4f}s "
          f"({lines_per_s:,.0f} lines/s; floor {MIN_LINES_PER_S:,.0f})")
    print(f"corpus bench: roundtrip_match={roundtrip} recovery_ok={recovery}")
    print(f"corpus bench: wrote {out} (pass={ok})")
    return 0 if ok else 1


def _timed_parse(lines: list[str]) -> float:
    start = time.perf_counter()
    result = parse_bench_recovering(lines, name="tput", source="<synthetic>")
    elapsed = time.perf_counter() - start
    if result.errors:
        raise SystemExit(
            f"corpus bench: synthetic netlist failed to parse: "
            f"{result.errors[0].format()}"
        )
    return elapsed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_corpus.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    return run_corpus_bench(out=args.out, repeats=args.repeats)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
