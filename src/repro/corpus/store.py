"""Content-addressed on-disk store for fetched benchmark netlists.

Mirrors the :mod:`repro.cache` store disciplines:

* **atomic writes** — netlist bytes land via temp-file + ``os.replace``
  (:func:`repro.runtime.codec.atomic_write_text`), the index via
  ``atomic_write_json``; a crash mid-fetch never leaves a torn entry;
* **paranoid reads** — every :meth:`CorpusStore.path_of` re-hashes the
  file against the pinned digest; a mismatch heals from the vendored
  fixture when one exists (bumping the ``corpus.store.heal`` counter)
  and raises :class:`CorpusError` otherwise;
* **versioned layout** — a ``VERSION`` stamp is checked on open and the
  store is wiped on mismatch (stale layouts become clean refetches, not
  undefined behaviour).

Layout::

    <root>/VERSION            corpus/<CORPUS_FORMAT>
    <root>/index.json         name -> {digest, family, fmt, bytes, origin}
    <root>/files/<dg[:2]>/<digest>.<bench|v>   raw netlist bytes

Checksums are blake2b (``digest_size=16``), the :mod:`repro.cache.keys`
width.  Remote entries without a manifest digest are pinned
trust-on-first-use: the first fetch records the digest in the index and
every later read verifies against it.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Iterable

from .. import telemetry
from ..runtime.codec import atomic_write_json, atomic_write_text, read_json
from .manifest import (
    FIXTURES_DIR,
    CorpusEntry,
    blake2b_hex,
    entries_for,
)

#: bump on any layout change; mismatched stores are wiped on open
CORPUS_FORMAT = 1

#: default store root, relative to the CWD (same convention as
#: .repro-cache / .repro-checkpoints); override with REPRO_CORPUS_DIR
DEFAULT_CORPUS_ROOT = ".repro-corpus"

#: environment switch forcing offline (vendored-fixtures-only) mode
OFFLINE_ENV = "REPRO_CORPUS_OFFLINE"

_DOWNLOAD_TIMEOUT_S = 30.0


class CorpusError(RuntimeError):
    """A corpus store problem the caller must handle (missing circuit,
    checksum mismatch with no healing source, network needed offline)."""


def offline_env() -> bool:
    """True when REPRO_CORPUS_OFFLINE requests vendored-only operation."""
    return os.environ.get(OFFLINE_ENV, "").strip() not in ("", "0")


def default_store() -> "CorpusStore":
    """The store at REPRO_CORPUS_DIR (default ``.repro-corpus``)."""
    root = os.environ.get("REPRO_CORPUS_DIR") or DEFAULT_CORPUS_ROOT
    return CorpusStore(root)


class CorpusStore:
    """Content-addressed corpus store with paranoid reads."""

    def __init__(self, root: "str | Path" = DEFAULT_CORPUS_ROOT) -> None:
        self.root = Path(root)
        self._ensure_layout()

    # -------------------------------------------------------------- #
    # layout

    @property
    def _version_path(self) -> Path:
        return self.root / "VERSION"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _file_path(self, digest: str, fmt: str = "bench") -> Path:
        # the suffix carries the format so downstream parsers (which
        # dispatch on it) work straight off the verified path
        ext = ".v" if fmt == "verilog" else ".bench"
        return self.root / "files" / digest[:2] / (digest + ext)

    def _ensure_layout(self) -> None:
        stamp = f"corpus/{CORPUS_FORMAT}\n"
        if self.root.exists():
            try:
                current = self._version_path.read_text()
            except OSError:
                current = ""
            if current != stamp:
                # stale or foreign layout: wipe, never reinterpret
                shutil.rmtree(self.root, ignore_errors=True)
        (self.root / "files").mkdir(parents=True, exist_ok=True)
        if not self._version_path.exists():
            atomic_write_text(self._version_path, stamp)

    def _read_index(self) -> dict:
        data = read_json(self._index_path)
        if not isinstance(data, dict) or not isinstance(
            data.get("entries"), dict
        ):
            return {"entries": {}}
        return data

    def _write_index(self, index: dict) -> None:
        atomic_write_json(self._index_path, index)

    # -------------------------------------------------------------- #
    # ingest

    def _ingest(self, entry: CorpusEntry, data: bytes, origin: str,
                index: dict) -> str:
        """Store one circuit's bytes; returns the digest."""
        digest = blake2b_hex(data)
        if entry.blake2b is not None and digest != entry.blake2b:
            raise CorpusError(
                f"corpus entry {entry.name!r}: checksum mismatch "
                f"(manifest {entry.blake2b}, got {digest})"
            )
        path = self._file_path(digest, entry.fmt)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, data.decode("utf-8"))
        index["entries"][entry.name] = {
            "digest": digest,
            "family": entry.family,
            "fmt": entry.fmt,
            "bytes": len(data),
            "origin": origin,
            "filename": entry.filename,
        }
        return digest

    def _vendored_bytes(self, entry: CorpusEntry) -> bytes:
        assert entry.vendored is not None
        return (FIXTURES_DIR / entry.vendored).read_bytes()

    def _download(self, entry: CorpusEntry) -> bytes:
        assert entry.url is not None
        from urllib.request import urlopen  # stdlib only; no new deps

        with urlopen(entry.url, timeout=_DOWNLOAD_TIMEOUT_S) as resp:
            return resp.read()

    def fetch(
        self,
        families: "list[str] | None" = None,
        offline: bool = False,
        force: bool = False,
    ) -> list[tuple[str, str]]:
        """Materialize a family selection into the store.

        Returns ``(name, action)`` pairs with action one of ``vendored``,
        ``downloaded``, ``cached`` or ``error: ...``.  ``offline`` (or
        ``REPRO_CORPUS_OFFLINE=1``) restricts the selection to vendored
        entries and never opens a socket.  ``force`` re-ingests entries
        already present.
        """
        offline = offline or offline_env()
        index = self._read_index()
        results: list[tuple[str, str]] = []
        for entry in entries_for(families, offline=offline):
            known = index["entries"].get(entry.name)
            if known is not None and not force:
                if self._file_path(
                    known["digest"], known.get("fmt", "bench")
                ).exists():
                    results.append((entry.name, "cached"))
                    continue
            try:
                if entry.vendored is not None:
                    self._ingest(entry, self._vendored_bytes(entry),
                                 "vendored", index)
                    results.append((entry.name, "vendored"))
                elif offline:
                    results.append(
                        (entry.name, "error: remote entry in offline mode")
                    )
                else:
                    self._ingest(entry, self._download(entry),
                                 "downloaded", index)
                    results.append((entry.name, "downloaded"))
            except CorpusError as exc:
                results.append((entry.name, f"error: {exc}"))
            except (OSError, UnicodeDecodeError) as exc:
                results.append((entry.name, f"error: {exc}"))
        self._write_index(index)
        return results

    # -------------------------------------------------------------- #
    # paranoid reads

    def _heal(self, entry: CorpusEntry, index: dict) -> Path:
        """Re-ingest a vendored entry after a corruption event."""
        digest = self._ingest(entry, self._vendored_bytes(entry),
                              "healed", index)
        self._write_index(index)
        telemetry.counter_add("corpus.store.heal")
        return self._file_path(digest, entry.fmt)

    def path_of(self, name: str) -> Path:
        """Verified path of a stored circuit.

        Re-hashes the stored bytes on every call; on mismatch the file
        is dropped and, for vendored entries, healed from the fixture.
        Raises :class:`CorpusError` when the circuit is absent or cannot
        be healed.
        """
        from .manifest import find_entry

        index = self._read_index()
        known = index["entries"].get(name)
        try:
            entry = find_entry(name)
        except KeyError as exc:
            raise CorpusError(str(exc)) from exc
        if known is None:
            if entry.vendored is not None:
                return self._heal(entry, index)
            raise CorpusError(
                f"corpus circuit {name!r} not fetched; run "
                f"`repro corpus fetch`"
            )
        path = self._file_path(known["digest"], known.get("fmt", "bench"))
        try:
            data = path.read_bytes()
        except OSError:
            data = None
        if data is None or blake2b_hex(data) != known["digest"]:
            if path.exists():
                path.unlink(missing_ok=True)
            if entry.vendored is not None:
                return self._heal(entry, index)
            del index["entries"][name]
            self._write_index(index)
            raise CorpusError(
                f"corpus circuit {name!r} is corrupt and has no vendored "
                f"source; re-run `repro corpus fetch`"
            )
        return path

    def read_text(self, name: str) -> str:
        return self.path_of(name).read_text()

    # -------------------------------------------------------------- #
    # inspection

    def list_entries(self) -> list[dict]:
        """Stored entries, index order, with manifest context."""
        index = self._read_index()
        out = []
        for name, meta in sorted(index["entries"].items()):
            out.append({"name": name, **meta})
        return out

    def verify(self) -> list[str]:
        """Re-hash every stored entry; returns problem descriptions.

        Vendored entries found corrupt are healed in place (counted in
        the report); remote entries are dropped so the next fetch can
        repair them.
        """
        problems: list[str] = []
        index = self._read_index()
        for name in list(index["entries"]):
            meta = index["entries"][name]
            path = self._file_path(meta["digest"], meta.get("fmt", "bench"))
            try:
                data = path.read_bytes()
            except OSError:
                data = None
            if data is not None and blake2b_hex(data) == meta["digest"]:
                continue
            problems.append(f"{name}: stored bytes do not match digest")
            try:
                self.path_of(name)  # heals or drops
                problems[-1] += " (healed from vendored fixture)"
            except CorpusError:
                problems[-1] += " (dropped; refetch required)"
        return problems

    def stats(self) -> dict:
        """Counts and sizes, plus the manifest checksum for cache keys."""
        from .manifest import manifest_checksum

        index = self._read_index()
        entries = index["entries"]
        total = sum(int(m.get("bytes", 0)) for m in entries.values())
        by_family: dict[str, int] = {}
        for meta in entries.values():
            by_family[meta["family"]] = by_family.get(meta["family"], 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total,
            "families": by_family,
            "manifest_checksum": manifest_checksum(),
        }

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
        self._ensure_layout()


def fetch_names(
    store: CorpusStore, names: Iterable[str], offline: bool = False
) -> None:
    """Ensure the given circuits are present (vendored ones self-heal)."""
    needed = set(names)
    families = sorted(
        {e.family for e in entries_for(offline=offline) if e.name in needed}
    )
    if families:
        store.fetch(families, offline=offline)
