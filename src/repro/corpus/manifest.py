"""Checked-in catalog of benchmark netlists the corpus manager knows.

Each :class:`CorpusEntry` names one circuit: where to get it (a vendored
fixture shipped inside the package, or a remote URL), which family it
belongs to, and the blake2b checksum the stored copy must match.

Checksum policy:

* **vendored** entries carry a checked-in checksum — the fixture file in
  the repo is the ground truth and a corrupted store copy heals from it;
* **remote** entries start with ``blake2b=None`` and are pinned
  trust-on-first-use: the first successful fetch records the digest in
  the store index, and every later read verifies against it.  (The repo
  is built fully offline, so upstream digests cannot be pre-computed;
  CI never touches these entries.)

The ``*-mini`` families are fully offline; ``repro corpus fetch
--offline`` (or ``REPRO_CORPUS_OFFLINE=1``) restricts fetching to them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

#: digest width shared with repro.cache.keys (hex chars = 2 * size)
DIGEST_SIZE = 16

#: where the vendored fixture files live
FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"

_ISCAS85_URL = "https://www.pld.ttu.ee/~maksim/benchmarks/iscas85/bench"
_ISCAS89_URL = "https://www.pld.ttu.ee/~maksim/benchmarks/iscas89/bench"
_ITC99_URL = "https://www.cad.polito.it/downloads/tools/itc99/bench"


@dataclass(frozen=True)
class CorpusEntry:
    """One circuit in the corpus catalog."""

    name: str  # canonical circuit name ("c432", "s27", ...)
    family: str  # family key ("iscas85", "iscas85-mini", ...)
    fmt: str = "bench"  # "bench" or "verilog"
    url: str | None = None  # remote source (None = vendored only)
    vendored: str | None = None  # filename under FIXTURES_DIR
    blake2b: str | None = None  # pinned digest (None = trust-on-first-use)
    approx_gates: int | None = None  # catalog hint, informational only

    @property
    def filename(self) -> str:
        ext = ".v" if self.fmt == "verilog" else ".bench"
        return f"{self.name}{ext}"


def _remote(name: str, family: str, base: str, gates: int) -> CorpusEntry:
    return CorpusEntry(
        name=name,
        family=family,
        url=f"{base}/{name}.bench",
        approx_gates=gates,
    )


#: vendored checksums are blake2b(digest_size=16) over the fixture bytes;
#: regenerate with ``python -m repro.corpus.manifest`` after editing a
#: fixture (the module prints the literal dict)
_VENDORED_CHECKSUMS = {
    "c17.bench": "ab083664cffabba7283b9159a65b23b5",
    "c432_mini.bench": "1a15f306b48b603654731258248a2357",
    "s27.bench": "89141c5a734db91dbb1db981fa450204",
    "b01_mini.bench": "eb7660361cd8df3d0a0a1b49309d26f6",
    "c17v.v": "82087db74b324a02b02a64d5dc3a2947",
}


def _vendored(
    name: str, family: str, fmt: str = "bench", gates: int | None = None
) -> CorpusEntry:
    ext = ".v" if fmt == "verilog" else ".bench"
    fname = f"{name}{ext}"
    return CorpusEntry(
        name=name,
        family=family,
        fmt=fmt,
        vendored=fname,
        blake2b=_VENDORED_CHECKSUMS.get(fname),
        approx_gates=gates,
    )


#: family key -> entries.  The ``*-mini`` families are the offline tier.
FAMILIES: dict[str, tuple[CorpusEntry, ...]] = {
    "iscas85-mini": (
        _vendored("c17", "iscas85-mini", gates=6),
        _vendored("c432_mini", "iscas85-mini", gates=160),
    ),
    "iscas89-mini": (
        _vendored("s27", "iscas89-mini", gates=10),
    ),
    "itc99-mini": (
        _vendored("b01_mini", "itc99-mini", gates=90),
    ),
    "verilog-mini": (
        # distinct name from the BENCH c17: the store index is keyed by
        # circuit name, and one name must map to exactly one format
        _vendored("c17v", "verilog-mini", fmt="verilog", gates=6),
    ),
    "iscas85": tuple(
        _remote(n, "iscas85", _ISCAS85_URL, g)
        for n, g in (
            ("c432", 160), ("c499", 202), ("c880", 383), ("c1355", 546),
            ("c1908", 880), ("c2670", 1193), ("c3540", 1669),
            ("c5315", 2307), ("c6288", 2416), ("c7552", 3512),
        )
    ),
    "iscas89": tuple(
        _remote(n, "iscas89", _ISCAS89_URL, g)
        for n, g in (
            ("s27", 10), ("s298", 119), ("s344", 160), ("s382", 158),
            ("s420", 218), ("s526", 193), ("s641", 379), ("s820", 289),
            ("s953", 395), ("s1196", 529), ("s1423", 657),
            ("s5378", 2779), ("s9234", 5597), ("s13207", 7951),
            ("s15850", 9772), ("s35932", 16065), ("s38417", 22179),
            ("s38584", 19253),
        )
    ),
    "itc99": tuple(
        _remote(n, "itc99", _ITC99_URL, g)
        for n, g in (
            ("b01", 45), ("b02", 26), ("b03", 149), ("b04", 597),
            ("b05", 927), ("b06", 49), ("b07", 382), ("b08", 168),
            ("b09", 159), ("b10", 172), ("b11", 481), ("b12", 952),
            ("b13", 289), ("b14", 9767), ("b15", 8367), ("b17", 30777),
            ("b18", 111241), ("b20", 19682), ("b21", 20027),
            ("b22", 29162),
        )
    ),
}

#: the families usable with zero network access
OFFLINE_FAMILIES: tuple[str, ...] = tuple(
    f for f in FAMILIES if f.endswith("-mini")
)


def entries_for(families: "list[str] | tuple[str, ...] | None" = None,
                offline: bool = False) -> list[CorpusEntry]:
    """Flatten the catalog for a family selection.

    ``families=None`` means every family (or every offline family when
    ``offline`` is set).  Unknown family names raise ``KeyError`` naming
    the valid keys.
    """
    keys = list(families) if families else list(
        OFFLINE_FAMILIES if offline else FAMILIES
    )
    out: list[CorpusEntry] = []
    for key in keys:
        if key not in FAMILIES:
            raise KeyError(
                f"unknown corpus family {key!r}; known: {sorted(FAMILIES)}"
            )
        if offline:
            entries = [e for e in FAMILIES[key] if e.vendored is not None]
            if not entries:
                raise KeyError(
                    f"corpus family {key!r} has no vendored entries; "
                    f"offline families: {sorted(OFFLINE_FAMILIES)}"
                )
            out.extend(entries)
        else:
            out.extend(FAMILIES[key])
    return out


def find_entry(name: str, families: "list[str] | None" = None) -> CorpusEntry:
    """Look up one circuit by name (optionally within given families)."""
    for entry in entries_for(families):
        if entry.name == name:
            return entry
    raise KeyError(
        f"unknown corpus circuit {name!r}; known: "
        f"{sorted({e.name for e in entries_for()})}"
    )


def blake2b_hex(data: bytes) -> str:
    """The corpus digest: blake2b, same width as repro.cache keys."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).hexdigest()


def manifest_checksum() -> str:
    """Digest of the whole catalog — the CI corpus-store cache key."""
    from ..runtime.codec import canonical_dumps

    payload = {
        family: [
            {
                "name": e.name, "fmt": e.fmt, "url": e.url,
                "vendored": e.vendored, "blake2b": e.blake2b,
            }
            for e in entries
        ]
        for family, entries in FAMILIES.items()
    }
    return blake2b_hex(canonical_dumps(payload).encode())


def _regenerate_checksums() -> dict[str, "str | None"]:
    """Recompute the vendored checksum dict from the files on disk."""
    out: dict[str, str | None] = {}
    for fname in _VENDORED_CHECKSUMS:
        p = FIXTURES_DIR / fname
        out[fname] = blake2b_hex(p.read_bytes()) if p.exists() else None
    return out


if __name__ == "__main__":  # pragma: no cover - maintenance helper
    print("_VENDORED_CHECKSUMS = {")
    for fname, digest in _regenerate_checksums().items():
        print(f"    {fname!r}: {digest!r},")
    print("}")
