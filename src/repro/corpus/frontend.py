"""Unified streaming front end for BENCH and structural Verilog.

One tokenizer + recursive-descent scanner serves both the strict parsing
API (``repro.netlist.parse_bench`` / ``parse_verilog`` delegate here) and
a recovering mode used by ``repro lint`` and the corpus robustness gate:

* **line-streaming** — input is consumed as an iterator of lines, never a
  whole-file read; ``load_bench``/``load_verilog`` hand the open file
  object straight to the scanner;
* **error-recovering** — instead of raising at the first problem, the
  scanner records a :class:`ParseDiagnostic` (file/line/col + offending
  line) and resynchronizes at the next statement boundary (the next line
  for BENCH, the next ``;`` for Verilog);
* **strict-compatible** — strict mode replays recovery and then raises
  ``errors[0]`` as a :class:`~repro.netlist.bench_io.NetlistFormatError`,
  so every error message, line number and raise order of the historical
  parsers is preserved byte-for-byte (the binding contracts live in
  ``tests/test_bench_io.py`` / ``tests/test_verilog_reader.py``);
* **cascade-suppressing** — when the line scan already produced errors,
  the semantic post-pass (undefined nets, validation) is skipped: a
  single typo must yield one diagnostic, not a wall of follow-on noise
  (``repro.lint`` relies on this to emit exactly one IO001 per defect).

Tokenizer extensions over the historical parsers (all backward
compatible): CRLF line endings, trailing-backslash line continuations,
and ``//`` / ``/* */`` comments in Verilog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..netlist.gates import BENCH_TYPES, GateType
from ..netlist.netlist import Netlist, NetlistError
from ..netlist.sequential import FlipFlop, SequentialCircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lint.diagnostics import Diagnostic
    from ..netlist.bench_io import NetlistFormatError


# ------------------------------------------------------------------ #
# diagnostics


@dataclass(frozen=True)
class ParseDiagnostic:
    """One recoverable parse error with full position information."""

    message: str
    source: str = "<string>"
    line_no: int = 0  # 1-based; 0 = whole file
    col: int = 0  # 1-based; 0 = whole line
    line: str = ""  # the offending source line, stripped

    def format(self) -> str:
        """``source:line:col: message`` (parts omitted when unknown)."""
        if self.line_no and self.col:
            return f"{self.source}:{self.line_no}:{self.col}: {self.message}"
        if self.line_no:
            return f"{self.source}:{self.line_no}: {self.message}"
        return f"{self.source}: {self.message}"

    def to_error(self) -> "NetlistFormatError":
        """The equivalent strict-mode exception (lazy import: cycle)."""
        from ..netlist.bench_io import NetlistFormatError

        return NetlistFormatError(
            self.message,
            source=self.source,
            line_no=self.line_no,
            line=self.line,
        )

    def to_lint(self, kind: str = "netlist") -> "Diagnostic":
        """Flow this error into the ``repro.lint`` diagnostics model."""
        from ..lint.diagnostics import Diagnostic, Location, Severity

        label = {"netlist": "BENCH", "verilog": "Verilog"}.get(kind, kind)
        return Diagnostic(
            rule_id="IO001",
            severity=Severity.ERROR,
            message=f"cannot parse {label}: {self.format()}",
            location=Location(source=self.source, line_no=self.line_no),
        )


@dataclass
class ParseResult:
    """Outcome of a recovering parse.

    ``circuit`` is the best-effort model (None when nothing could be
    assembled); it is only guaranteed valid when ``errors`` is empty.
    ``stats`` carries throughput accounting: physical ``lines`` consumed,
    ``gates`` and ``flops`` accepted.
    """

    circuit: SequentialCircuit | None
    errors: list[ParseDiagnostic] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self) -> SequentialCircuit:
        """Strict view: raise ``errors[0]`` or return the circuit."""
        if self.errors:
            raise self.errors[0].to_error()
        assert self.circuit is not None
        return self.circuit


# ------------------------------------------------------------------ #
# shared tokenizer


_IDENT_RE = re.compile(r"[\w.\[\]$/]+")
_WORD_RE = re.compile(r"\w+")


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based column."""

    text: str
    col: int


def tokenize(line: str) -> list[Token] | None:
    """Split one statement into identifier/punctuation tokens.

    Identifiers use the BENCH net-name charset (``[\\w.\\[\\]$/]``);
    punctuation is ``( ) , =``.  Returns None when the line contains a
    character outside both sets — the caller reports it as unparseable.
    """
    toks: list[Token] = []
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch in " \t":
            i += 1
            continue
        if ch in "(),=":
            toks.append(Token(ch, i + 1))
            i += 1
            continue
        m = _IDENT_RE.match(line, i)
        if m is None:
            return None
        toks.append(Token(m.group(), i + 1))
        i = m.end()
    return toks


class _LineStream:
    """Streaming logical-line reader shared by both scanners.

    Strips CRLF, merges trailing-backslash continuations (the merged
    line reports the first physical line's number) and counts physical
    lines for the throughput stats.  Never materializes the whole input.
    """

    def __init__(self, lines: Iterable[str], comment: str | None = None):
        # a single shared iterator: re-entering ``__iter__`` (e.g. to
        # drain after an early ``endmodule``) resumes, never restarts
        self._lines = iter(lines)
        self._comment = comment
        self.physical = 0

    def __iter__(self) -> Iterator[tuple[int, str]]:
        pending: str | None = None
        pending_no = 0
        for raw in self._lines:
            self.physical += 1
            text = raw.rstrip("\r\n")
            if pending is not None:
                text = pending + text
                no = pending_no
            else:
                no = self.physical
            body = text
            if self._comment is not None:
                body = text.split(self._comment, 1)[0]
            if body.rstrip().endswith("\\"):
                pending = body.rstrip()[:-1]
                pending_no = no
                continue
            pending = None
            yield no, text
        if pending is not None:
            yield pending_no, pending


# ------------------------------------------------------------------ #
# BENCH


def _parse_bench_statement(
    toks: list[Token],
) -> tuple[str, ...] | None:
    """Classify one tokenized BENCH line.

    Returns ``("io", kind, net)``, ``("def", lhs, op, arg0, ...)`` or
    None (unparseable).  Mirrors the historical regex grammar: ``INPUT``
    / ``OUTPUT`` are case-sensitive, operator names are bare words,
    argument lists tolerate empty slots (``AND(a,)`` has one argument).
    """
    if not toks:
        return None
    head = toks[0]
    if _IDENT_RE.fullmatch(head.text) is None:
        return None
    if len(toks) == 4 and head.text in ("INPUT", "OUTPUT"):
        if (
            toks[1].text == "("
            and toks[3].text == ")"
            and _IDENT_RE.fullmatch(toks[2].text)
        ):
            return ("io", head.text, toks[2].text)
        return None
    if len(toks) >= 5 and toks[1].text == "=":
        op = toks[2]
        if (
            _WORD_RE.fullmatch(op.text) is None
            or toks[3].text != "("
            or toks[-1].text != ")"
        ):
            return None
        args: list[str] = []
        for t in toks[4:-1]:
            if t.text == ",":
                continue
            if _IDENT_RE.fullmatch(t.text) is None:
                return None
            args.append(t.text)
        return ("def", head.text, op.text, *args)
    return None


def parse_bench_recovering(
    lines: Iterable[str], name: str = "bench", source: str | None = None
) -> ParseResult:
    """Streaming, error-recovering BENCH parse.

    Scans line by line, recording a :class:`ParseDiagnostic` per defect
    and resynchronizing at the next line.  Recovery policy per defect
    (only the recovered *model* differs; strict mode raises ``errors[0]``
    before any of it is observable): unparseable/unknown-operator lines
    are dropped, duplicate drivers keep the first definition, arity
    violations keep the statement truncated to a legal fan-in.  The
    semantic post-pass (undefined nets, output checks, validation) runs
    only when the scan was clean, so one typo yields one diagnostic.
    """
    src = source if source is not None else name
    core = Netlist(name)
    outputs: list[tuple[str, int, str]] = []  # (net, line_no, line)
    flops: list[tuple[str, str, int, str]] = []  # (q, d, line_no, line)
    defined_at: dict[str, tuple[int, str]] = {}
    errors: list[ParseDiagnostic] = []
    n_gates = 0

    def err(message: str, line_no: int = 0, line: str = "", col: int = 0) -> None:
        errors.append(
            ParseDiagnostic(message, source=src, line_no=line_no, line=line, col=col)
        )

    stream = _LineStream(lines, comment="#")
    for line_no, raw in stream:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        toks = tokenize(line)
        stmt = _parse_bench_statement(toks) if toks is not None else None
        if stmt is None:
            err(f"unparseable BENCH line: {raw.strip()!r}", line_no, line, col=1)
            continue
        if stmt[0] == "io":
            _, kind, net = stmt
            if kind == "INPUT":
                if net in defined_at:
                    err(
                        f"net {net!r} already defined on line "
                        f"{defined_at[net][0]}",
                        line_no,
                        line,
                    )
                    continue
                core.add_input(net)
                defined_at[net] = (line_no, line)
            else:
                outputs.append((net, line_no, line))
            continue
        _, lhs, raw_op, *args = stmt
        op = raw_op.upper()
        if lhs in defined_at:
            err(
                f"net {lhs!r} already defined on line {defined_at[lhs][0]}",
                line_no,
                line,
            )
            continue
        if op == "DFF":
            if len(args) != 1:
                err(
                    f"DFF {lhs!r} must have exactly one input, got {len(args)}",
                    line_no,
                    line,
                )
                if not args:
                    continue  # nothing to recover from
                args = args[:1]  # recovered model keeps the first data net
            flops.append((lhs, args[0], line_no, line))
            core.add_input(lhs)  # Q net is a pseudo-primary input of the core
        elif op in BENCH_TYPES:
            try:
                core.add_gate(lhs, BENCH_TYPES[op], args)
                n_gates += 1
            except (NetlistError, ValueError) as exc:
                err(str(exc), line_no, line)
                continue
        else:
            err(f"unknown BENCH gate type {op!r}", line_no, line)
            continue
        defined_at[lhs] = (line_no, line)

    scan_clean = not errors
    if scan_clean:
        # semantic post-pass, in the strict parser's historical order:
        # undefined fan-ins (at the referencing line), then outputs, then
        # flop data nets — all against the defining/declaring line
        for lhs, (line_no, line) in defined_at.items():
            if not core.has_net(lhs):
                continue
            for fi in core.gate(lhs).fanin:
                if not core.has_net(fi):
                    err(f"gate {lhs!r} uses undefined net {fi!r}", line_no, line)
        for o, line_no, line in outputs:
            if not core.has_net(o):
                err(f"OUTPUT({o}) names an undefined net", line_no, line)
        for q, d, line_no, line in flops:
            if not core.has_net(d):
                err(f"DFF {q!r} uses undefined net {d!r}", line_no, line)

    circuit: SequentialCircuit | None = None
    out_nets = [o for o, _, _ in outputs] + [d for _, d, _, _ in flops]
    try:
        core.set_outputs(out_nets)
        circuit = SequentialCircuit(core, name=name)
        for q, d, _, _ in flops:
            if core.has_net(d) and core.has_net(q):
                circuit.add_flop(FlipFlop(f"ff_{q}", d=d, q=q))
        # true primary outputs were listed first; pseudo-outputs appended
        circuit.core.set_outputs(out_nets)
        if scan_clean and not errors:
            try:
                circuit.validate()
            except NetlistError as exc:
                err(str(exc))
    except (NetlistError, ValueError) as exc:
        # best-effort assembly failed outright; only report it when the
        # scan itself was clean (otherwise it is cascade noise)
        if scan_clean and not errors:
            err(str(exc))

    return ParseResult(
        circuit=circuit,
        errors=errors,
        stats={
            "lines": stream.physical,
            "gates": n_gates,
            "flops": len(flops),
        },
    )


def parse_bench_strict(
    text: str, name: str = "bench", source: str | None = None
) -> SequentialCircuit:
    """Strict BENCH parse: first recovered error is raised."""
    return parse_bench_recovering(
        text.splitlines(), name=name, source=source
    ).raise_first()


def load_bench_streaming(path: str | Path) -> ParseResult:
    """Recovering parse of a BENCH file, streamed (no whole-file read)."""
    p = Path(path)
    with open(p, "r") as fh:
        return parse_bench_recovering(fh, name=p.stem, source=str(p))


# ------------------------------------------------------------------ #
# Verilog (the structural subset repro.netlist.verilog_io emits)


_VERILOG_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_MODULE_RE = re.compile(r"module\s+(\S+)\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(r"^(input|output|wire|reg)\s+(.+)$")
_INST_RE = re.compile(r"^(\w+)\s+\w+\s*\((.*)\)$")
_ASSIGN_CONST_RE = re.compile(r"^assign\s+(\S+)\s*=\s*1'b([01])$")
_ASSIGN_MUX_RE = re.compile(
    r"^assign\s+(\S+)\s*=\s*(\S+)\s*\?\s*(\S+)\s*:\s*(\S+)$"
)
_ASSIGN_WIRE_RE = re.compile(r"^assign\s+(\S+)\s*=\s*([^?;]+)$")
_FF_RE = re.compile(
    r"^(\S+)_state\s*<=\s*scan_enable\s*\?\s*(\S+)\s*:\s*(\S+)$"
)
_ENDMODULE_RE = re.compile(r"\bendmodule\b")

_ALWAYS_HEADER = "always @(posedge clk)"
_SCAN_PORTS = frozenset({"clk", "scan_enable", "scan_in", "scan_out"})


def _unescape(token: str) -> str:
    token = token.strip()
    if token.startswith("\\"):
        return token[1:].strip()
    return token


class _VerilogCommentStripper:
    """Per-line ``//`` and ``/* */`` comment removal (stateful)."""

    def __init__(self) -> None:
        self._in_block = False

    def strip(self, text: str) -> str:
        out: list[str] = []
        i, n = 0, len(text)
        while i < n:
            if self._in_block:
                end = text.find("*/", i)
                if end < 0:
                    return "".join(out)
                self._in_block = False
                i = end + 2
                continue
            line_c = text.find("//", i)
            block_c = text.find("/*", i)
            if line_c < 0 and block_c < 0:
                out.append(text[i:])
                break
            if block_c < 0 or (0 <= line_c < block_c):
                out.append(text[i:line_c])
                break
            out.append(text[i:block_c])
            self._in_block = True
            i = block_c + 2
        return "".join(out)


def parse_verilog_recovering(
    lines: Iterable[str], name: str | None = None, source: str | None = None
) -> ParseResult:
    """Streaming, error-recovering parse of structural Verilog.

    Statements are assembled on the fly (``;`` is the resync boundary);
    a bad statement records a diagnostic and scanning continues at the
    next one.  Comments (``//``, ``/* */``), CRLF and line continuations
    are handled by the shared line layer.  The post-pass (deferred
    assigns, flop reconstruction, validation) is cascade-suppressed when
    the statement scan already recorded errors.
    """
    src = source if source is not None else (name or "<verilog>")
    errors: list[ParseDiagnostic] = []

    def err(message: str, line_no: int = 0, line: str = "") -> None:
        errors.append(
            ParseDiagnostic(message, source=src, line_no=line_no, line=line)
        )

    stream = _LineStream(lines)
    stripper = _VerilogCommentStripper()

    core: Netlist | None = None
    outputs: list[str] = []
    ff_updates: dict[str, tuple[str, str]] = {}  # state reg -> (prev, d)
    ff_q_assign: dict[str, tuple[str, int]] = {}  # q net -> (state reg, line)
    pending_assigns: list[tuple[str, str, int, str]] = []
    n_gates = 0

    mod_name: str | None = None
    header_buf: list[str] = []
    ended = False

    stmt_buf: list[str] = []
    stmt_line = 0

    def define(net: str, gtype: GateType, fanin: tuple[str, ...],
               line_no: int, stmt: str) -> bool:
        nonlocal n_gates
        assert core is not None
        try:
            core.add_gate(net, gtype, fanin)
            n_gates += 1
            return True
        except (NetlistError, ValueError) as exc:
            err(str(exc), line_no, stmt)
            return False

    def process_statement(stmt: str, line_no: int) -> None:
        assert core is not None
        decl = _DECL_RE.match(stmt)
        if decl:
            kind, names = decl.groups()
            for tok in names.split(","):
                net = _unescape(tok)
                if not net or net in _SCAN_PORTS:
                    continue
                if kind == "input":
                    try:
                        core.add_input(net)
                    except NetlistError as exc:
                        err(str(exc), line_no, stmt)
                elif kind == "output":
                    outputs.append(net)
            return
        cm = _ASSIGN_CONST_RE.match(stmt)
        if cm:
            net, bit = _unescape(cm.group(1)), cm.group(2)
            if net not in _SCAN_PORTS:
                define(
                    net,
                    GateType.CONST1 if bit == "1" else GateType.CONST0,
                    (),
                    line_no,
                    stmt,
                )
            return
        mm = _ASSIGN_MUX_RE.match(stmt)
        if mm:
            y, s, d1, d0 = (_unescape(t) for t in mm.groups())
            define(y, GateType.MUX, (s, d0, d1), line_no, stmt)
            return
        fm = _FF_RE.match(stmt)
        if fm:
            reg, prev, d = (_unescape(t) for t in fm.groups())
            ff_updates[reg] = (prev, d)
            return
        wm = _ASSIGN_WIRE_RE.match(stmt)
        if wm:
            y, rhs = _unescape(wm.group(1)), _unescape(wm.group(2))
            if y in _SCAN_PORTS:
                return
            if rhs.endswith("_state"):
                ff_q_assign[y] = (rhs[: -len("_state")], line_no)
            else:
                pending_assigns.append((y, rhs, line_no, stmt))
            return
        im = _INST_RE.match(stmt)
        if im:
            prim, args = im.groups()
            if prim in _VERILOG_PRIMITIVES:
                nets = [_unescape(a) for a in args.split(",")]
                define(
                    nets[0],
                    _VERILOG_PRIMITIVES[prim],
                    tuple(nets[1:]),
                    line_no,
                    stmt,
                )
                return
        # `reg x_state` declarations and anything scan-infrastructure
        if stmt.startswith("reg ") or any(p in stmt for p in _SCAN_PORTS):
            return
        err(f"unsupported Verilog statement: {stmt!r}", line_no, stmt)

    def feed(chunk: str, line_no: int) -> None:
        nonlocal stmt_line
        if chunk.strip() and not any(p.strip() for p in stmt_buf):
            stmt_line = line_no
        stmt_buf.append(chunk)

    def flush() -> None:
        stmt = " ".join("".join(stmt_buf).split())
        stmt_buf.clear()
        if stmt:
            process_statement(stmt, stmt_line)

    for line_no, raw in stream:
        text = stripper.strip(raw)
        if core is None:
            header_buf.append(text + "\n")
            if "module" not in text and ";" not in text:
                continue
            joined = "".join(header_buf)
            m = _MODULE_RE.search(joined)
            if m is None:
                continue
            mod_name = name or _unescape(m.group(1))
            core = Netlist(mod_name)
            # feed the text after the header back through the statement
            # layer; it lives on this same physical line (the writer puts
            # a newline after the port list, so this is usually empty)
            # the match always completes on the current physical line
            # (it needs the ``;`` this line just supplied), so the
            # remainder has no interior newlines — only a trailing one
            rest = joined[m.end() :]
            header_buf.clear()
            text = rest[:-1] if rest.endswith("\n") else rest
            # fall through to statement assembly with the remainder
        text = text.replace(_ALWAYS_HEADER, ";")
        em = _ENDMODULE_RE.search(text)
        if em is not None:
            text = text[: em.start()]
            ended = True
        chunks = text.split(";")
        for chunk in chunks[:-1]:
            feed(chunk, line_no)
            flush()
        feed(chunks[-1], line_no)
        if ended:
            break
    if core is not None:
        flush()  # a trailing statement without ';' still counts
    # drain the stream so `stats["lines"]` counts the whole file even
    # when endmodule appears early
    for _ in stream:
        pass

    if core is None:
        # anchor the whole-file diagnostics on the last physical line so
        # they stay locatable (an unlocated diagnostic reads as a crash
        # in lint UIs and fails the robustness gate)
        err("no module found", max(1, stream.physical))
        return ParseResult(
            circuit=None, errors=errors, stats={"lines": stream.physical,
                                                "gates": 0, "flops": 0}
        )
    if not ended:
        err("missing endmodule", max(1, stream.physical))

    scan_clean = not errors
    if scan_clean:
        for y, rhs, line_no, stmt in pending_assigns:
            try:
                core.add_gate(y, GateType.BUF, (rhs,))
                n_gates += 1
            except NetlistError as exc:
                err(str(exc), line_no, stmt)
    else:
        for y, rhs, _, _ in pending_assigns:
            try:
                core.add_gate(y, GateType.BUF, (rhs,))
                n_gates += 1
            except (NetlistError, ValueError):
                continue

    flops: list[FlipFlop] = []
    for q, (reg, line_no) in ff_q_assign.items():
        if reg not in ff_updates:
            if scan_clean:
                err(f"flop state {reg!r} has no always block", line_no)
            continue
        _, d = ff_updates[reg]
        try:
            core.add_input(q)
        except NetlistError as exc:
            if scan_clean:
                err(str(exc), line_no)
            continue
        flops.append(FlipFlop(reg, d=d, q=q))

    circuit: SequentialCircuit | None = None
    try:
        core.set_outputs(outputs + [ff.d for ff in flops if ff.d not in outputs])
        circuit = SequentialCircuit(core, name=mod_name or "verilog")
        for ff in flops:
            if core.has_net(ff.d) and core.has_net(ff.q):
                circuit.add_flop(ff)
        if circuit.flops:
            circuit.build_scan_chains(1)
        if scan_clean and not errors:
            try:
                circuit.validate()
            except NetlistError as exc:
                err(str(exc))
    except (NetlistError, ValueError) as exc:
        if scan_clean and not errors:
            err(str(exc))

    return ParseResult(
        circuit=circuit,
        errors=errors,
        stats={
            "lines": stream.physical,
            "gates": n_gates,
            "flops": len(flops),
        },
    )


def parse_verilog_strict(
    text: str, name: str | None = None, source: str | None = None
) -> SequentialCircuit:
    """Strict Verilog parse: first recovered error is raised."""
    return parse_verilog_recovering(
        text.splitlines(), name=name, source=source
    ).raise_first()


def load_verilog_streaming(path: str | Path) -> ParseResult:
    """Recovering parse of a Verilog file, streamed."""
    p = Path(path)
    with open(p, "r") as fh:
        return parse_verilog_recovering(fh, name=p.stem, source=str(p))


def parse_path_recovering(path: str | Path) -> ParseResult:
    """Dispatch a file to the right recovering parser by suffix."""
    p = Path(path)
    if p.suffix.lower() == ".v":
        return load_verilog_streaming(p)
    return load_bench_streaming(p)
