"""Unified resource budgets for long-running search loops.

Every expensive engine in the repository — the CDCL solver, PODEM, the
bit-parallel fault simulator, the attack DIP loops — can run effectively
forever on an adversarial instance.  The paper's evaluation (and every
attack-evaluation paper it cites) reports results under explicit per-run
resource limits; :class:`Budget` is the single object that carries those
limits through all layers:

* a **wall-clock deadline** (``wall_s`` seconds from :meth:`start`),
* a **conflict cap** (CDCL conflicts, the classic SAT-attack knob),
* a **backtrack cap** (PODEM decisions reversed),
* a **pattern cap** (fault-simulation pattern-equivalents).

The budget is *cooperative*: engines call the cheap ``charge_*`` /
``check_deadline`` methods at natural checkpoints (a conflict, a
backtrack, one fault's pattern block) and a violation raises
:class:`BudgetExhausted` or :class:`DeadlineExpired`.  Both derive from
:class:`ResourceExhausted`, which :func:`repro.runtime.run_guarded`
translates into structured ``timeout`` / ``budget`` outcomes so harnesses
record thwarted rows instead of dying.

One budget may be shared across many solver calls — that is the point:
an attack-level budget bounds the *sum* of its solves, not each one.
"""

from __future__ import annotations

import time


class ResourceExhausted(RuntimeError):
    """Base of all cooperative resource-limit violations.

    ``kind`` is the :class:`~repro.runtime.outcome.RunOutcome` status the
    violation maps to (``"budget"`` or ``"timeout"``).
    """

    kind = "budget"


class BudgetExhausted(ResourceExhausted):
    """A countable cap (conflicts/backtracks/patterns/queries) ran out."""

    kind = "budget"


class DeadlineExpired(ResourceExhausted):
    """The wall-clock deadline passed (or was force-expired)."""

    kind = "timeout"


class Budget:
    """Cooperative resource budget shared across engine layers.

    Args:
        wall_s: wall-clock allowance in seconds (None = no deadline).
        max_conflicts: CDCL conflict cap across all charged solves.
        max_backtracks: PODEM backtrack cap.
        max_patterns: fault-simulation pattern-equivalent cap.

    The clock starts at construction; :meth:`restart` rewinds both the
    deadline and every counter (used by retry policies that grant each
    attempt a fresh allowance).
    """

    __slots__ = (
        "wall_s",
        "max_conflicts",
        "max_backtracks",
        "max_patterns",
        "conflicts",
        "backtracks",
        "patterns",
        "_t0",
        "_deadline",
        "_forced",
    )

    def __init__(
        self,
        wall_s: float | None = None,
        max_conflicts: int | None = None,
        max_backtracks: int | None = None,
        max_patterns: int | None = None,
    ) -> None:
        self.wall_s = wall_s
        self.max_conflicts = max_conflicts
        self.max_backtracks = max_backtracks
        self.max_patterns = max_patterns
        self.conflicts = 0
        self.backtracks = 0
        self.patterns = 0
        self._forced = False
        self._t0 = time.monotonic()
        self._deadline = None if wall_s is None else self._t0 + wall_s

    # ------------------------------------------------------------------ #

    def restart(self) -> "Budget":
        """Reset counters and rewind the deadline; returns self."""
        self.conflicts = 0
        self.backtracks = 0
        self.patterns = 0
        self._forced = False
        self._t0 = time.monotonic()
        self._deadline = None if self.wall_s is None else self._t0 + self.wall_s
        return self

    @property
    def elapsed_s(self) -> float:
        """Seconds since construction / last :meth:`restart`."""
        return time.monotonic() - self._t0

    @property
    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None when no deadline is set)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def expired(self) -> bool:
        """Non-raising deadline probe."""
        if self._forced:
            return True
        return self._deadline is not None and time.monotonic() >= self._deadline

    def force_expire(self) -> None:
        """Make every subsequent deadline check fail (fault injection)."""
        self._forced = True

    def exhausted(self) -> bool:
        """Non-raising probe: True when any cap or the deadline is hit.

        Lets code that also runs under a *local* per-call budget decide
        whether a caught :class:`BudgetExhausted` belongs to this shared
        budget (propagate) or to the local one (handle in place).
        """
        if self.expired():
            return True
        if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
            return True
        if (
            self.max_backtracks is not None
            and self.backtracks >= self.max_backtracks
        ):
            return True
        if self.max_patterns is not None and self.patterns >= self.max_patterns:
            return True
        return False

    # ------------------------------------------------------------------ #
    # charge points — called from engine inner loops; must stay cheap

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExpired` once the wall clock runs out."""
        if self._forced or (
            self._deadline is not None and time.monotonic() >= self._deadline
        ):
            raise DeadlineExpired(
                f"wall-clock budget of {self.wall_s}s expired "
                f"(elapsed {self.elapsed_s:.3f}s)"
            )

    def charge_conflict(self, n: int = 1) -> None:
        """Account ``n`` CDCL conflicts; raise on cap or deadline."""
        self.conflicts += n
        if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
            raise BudgetExhausted(
                f"conflict budget {self.max_conflicts} exhausted"
            )
        self.check_deadline()

    def charge_backtrack(self, n: int = 1) -> None:
        """Account ``n`` PODEM backtracks; raise on cap or deadline."""
        self.backtracks += n
        if (
            self.max_backtracks is not None
            and self.backtracks >= self.max_backtracks
        ):
            raise BudgetExhausted(
                f"backtrack budget {self.max_backtracks} exhausted"
            )
        self.check_deadline()

    def charge_patterns(self, n: int) -> None:
        """Account ``n`` simulated pattern-equivalents; raise on cap/deadline."""
        self.patterns += n
        if self.max_patterns is not None and self.patterns >= self.max_patterns:
            raise BudgetExhausted(
                f"pattern budget {self.max_patterns} exhausted"
            )
        self.check_deadline()

    # ------------------------------------------------------------------ #

    def spend(self) -> dict[str, float | int]:
        """Diagnostics snapshot for :class:`~repro.runtime.RunOutcome`."""
        return {
            "elapsed_s": round(self.elapsed_s, 6),
            "conflicts": self.conflicts,
            "backtracks": self.backtracks,
            "patterns": self.patterns,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        caps = [
            f"{k}={v}"
            for k, v in (
                ("wall_s", self.wall_s),
                ("max_conflicts", self.max_conflicts),
                ("max_backtracks", self.max_backtracks),
                ("max_patterns", self.max_patterns),
            )
            if v is not None
        ]
        return f"Budget({', '.join(caps) or 'unlimited'})"
