"""Deterministic fault injection for robustness testing.

The checkpoint/resume and budget machinery only earns its keep if a
killed process, an expiring deadline, or a corrupted checkpoint actually
degrade gracefully — which can only be proven by *making those happen on
demand*.  This module provides a tiny deterministic injection registry:

* engines mark **sites** in their inner loops::

      if faultinject.enabled:
          faultinject.fire("sat.conflict")

  When nothing is installed, ``enabled`` is False and the cost of the
  site is one module-attribute read.

* tests install **plans**: fire an exception (or run a callable) on the
  Nth hit of a site::

      faultinject.install("sat.conflict", at=100)            # raise InjectedFault
      faultinject.install("podem.backtrack", at=5,
                          action=budget.force_expire)        # expire mid-PODEM
      with faultinject.injected("experiment.row", at=3):
          ...                                                # auto-clears

Instrumented sites (grep for ``faultinject.fire``):

========================  =====================================================
``sat.conflict``          every CDCL conflict in :meth:`repro.sat.Solver.solve`
``podem.backtrack``       every PODEM backtrack
``faultsim.fault``        every fault processed by :meth:`FaultSimulator.run`
``checkpoint.save``       before a checkpoint's atomic rename
``experiment.row``        before each experiment row is computed
========================  =====================================================

Everything is process-local and deterministic: hit counters advance only
while at least one plan is installed, so unrelated code paths cannot
perturb the schedule.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: fast-path flag read by instrumented sites; True iff any plan is installed
enabled = False


class InjectedFault(RuntimeError):
    """Default exception raised by a fired injection plan."""


@dataclass
class _Plan:
    site: str
    at: int
    exc: type[BaseException] | BaseException | None = None
    action: Callable[[], None] | None = None
    repeat: bool = False
    fired: int = field(default=0)


_plans: dict[str, list[_Plan]] = {}
_hits: dict[str, int] = {}


def install(
    site: str,
    at: int = 1,
    exc: type[BaseException] | BaseException | None = None,
    action: Callable[[], None] | None = None,
    repeat: bool = False,
) -> None:
    """Arm ``site`` to fire on its ``at``-th hit (1-based).

    Exactly one of ``exc`` / ``action`` applies: ``action`` is called if
    given, otherwise ``exc`` (default :class:`InjectedFault`) is raised.
    With ``repeat`` the plan fires on every hit >= ``at``.
    """
    global enabled
    if at < 1:
        raise ValueError("at must be >= 1 (1-based hit count)")
    _plans.setdefault(site, []).append(
        _Plan(site=site, at=at, exc=exc, action=action, repeat=repeat)
    )
    enabled = True


def clear(site: str | None = None) -> None:
    """Remove plans (for one site, or all) and reset hit counters."""
    global enabled
    if site is None:
        _plans.clear()
        _hits.clear()
    else:
        _plans.pop(site, None)
        _hits.pop(site, None)
    enabled = bool(_plans)


def hits(site: str) -> int:
    """Hits recorded for ``site`` since its counter was last cleared."""
    return _hits.get(site, 0)


def fire(site: str) -> None:
    """Advance ``site``'s hit counter and trigger any due plan.

    Instrumented code guards the call with ``faultinject.enabled`` so an
    idle registry costs nothing; calling unconditionally is also safe.
    """
    if not enabled:
        return
    plans = _plans.get(site)
    if not plans:
        return
    count = _hits.get(site, 0) + 1
    _hits[site] = count
    for plan in plans:
        due = count == plan.at or (plan.repeat and count >= plan.at)
        if not due:
            continue
        plan.fired += 1
        if plan.action is not None:
            plan.action()
            continue
        exc = plan.exc
        if exc is None:
            raise InjectedFault(f"injected fault at {site} (hit {count})")
        if isinstance(exc, type):
            raise exc(f"injected fault at {site} (hit {count})")
        raise exc


@contextlib.contextmanager
def injected(
    site: str,
    at: int = 1,
    exc: type[BaseException] | BaseException | None = None,
    action: Callable[[], None] | None = None,
    repeat: bool = False,
) -> Iterator[None]:
    """Context manager: install a plan, always clear the site on exit."""
    install(site, at=at, exc=exc, action=action, repeat=repeat)
    try:
        yield
    finally:
        clear(site)


# ---------------------------------------------------------------------- #
# checkpoint-file attacks (used by the robustness suite)


def truncate_file(path: str | os.PathLike, keep_bytes: int = 3) -> None:
    """Truncate a file to ``keep_bytes`` — a torn write / partial flush."""
    with open(path, "r+b") as fh:
        fh.truncate(keep_bytes)


def corrupt_file(path: str | os.PathLike, garbage: bytes = b"\x00garbage{") -> None:
    """Overwrite a file's head with garbage — bit-rot / cross-write."""
    with open(path, "r+b") as fh:
        fh.seek(0)
        fh.write(garbage)
