"""Deterministic fault injection for robustness testing.

The checkpoint/resume and budget machinery only earns its keep if a
killed process, an expiring deadline, or a corrupted checkpoint actually
degrade gracefully — which can only be proven by *making those happen on
demand*.  This module provides a tiny deterministic injection registry:

* engines mark **sites** in their inner loops::

      if faultinject.enabled:
          faultinject.fire("sat.conflict")

  When nothing is installed, ``enabled`` is False and the cost of the
  site is one module-attribute read.

* tests install **plans**: fire an exception (or run a callable) on the
  Nth hit of a site::

      faultinject.install("sat.conflict", at=100)            # raise InjectedFault
      faultinject.install("podem.backtrack", at=5,
                          action=budget.force_expire)        # expire mid-PODEM
      with faultinject.injected("experiment.row", at=3):
          ...                                                # auto-clears

Instrumented sites (grep for ``faultinject.fire``):

========================  =====================================================
``sat.conflict``          every CDCL conflict in :meth:`repro.sat.Solver.solve`
``podem.backtrack``       every PODEM backtrack
``faultsim.fault``        every fault processed by :meth:`FaultSimulator.run`
``checkpoint.save``       before a checkpoint's atomic rename
``cache.put``             before a result-cache entry's atomic rename
``experiment.row``        before each experiment row is computed
========================  =====================================================

Everything is process-local and deterministic: hit counters advance only
while at least one plan is installed, so unrelated code paths cannot
perturb the schedule.

Process-level chaos
-------------------

On top of the in-process registry this module carries the **chaos
harness** used by ``repro chaos run`` and the supervisor tests: plans
that kill, hang, or stall a whole worker process, or corrupt/ENOSPC a
durable write, described by the ``REPRO_CHAOS`` environment variable so
pool children inherit them across ``fork``/``spawn``::

    REPRO_CHAOS="kill:b21@*;hang:b20@0;enospc:cache.put@1" repro table1 --jobs 4

Spec grammar — semicolon-separated ``action:target[@n]`` entries:

=====================  ====================================================
``kill:<row>[@a]``     SIGKILL the worker when it starts row ``<row>``
``exit:<row>[@a]``     ``os._exit(42)`` instead (no signal, bad exit code)
``hang:<row>[@a]``     stop the heartbeat thread, then sleep forever — a
                       worker that is alive but effectively dead (caught
                       by the supervisor's stale-heartbeat monitor)
``stall:<row>[@a]``    sleep forever with a live heartbeat — caught only
                       by the per-row deadline watchdog
``corrupt:<site>[@n]`` truncate the file a durable-write site is about to
                       rename into place (``checkpoint.save``/``cache.put``)
``enospc:<site>[@n]``  raise ``OSError(ENOSPC)`` at the site's nth hit
``raise:<site>[@n]``   raise :class:`InjectedFault` at the site's nth hit
=====================  ====================================================

Row-targeted entries (`kill`/`exit`/`hang`/`stall`) default to the row's
**first process-level attempt** (``@0``) so the supervisor's retry makes
the campaign converge to the uninjected result; ``@*`` fires on every
attempt, which is how a poison row is simulated.  ``<row>`` of ``*``
matches any row.
"""

from __future__ import annotations

import contextlib
import errno
import inspect
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: environment variable carrying the process-level chaos spec; worker
#: processes re-parse it on startup so plans survive ``spawn`` too
CHAOS_ENV = "REPRO_CHAOS"

#: fast-path flag read by instrumented sites; True iff any plan is installed
enabled = False


class InjectedFault(RuntimeError):
    """Default exception raised by a fired injection plan."""


@dataclass
class _Plan:
    site: str
    at: int
    exc: type[BaseException] | BaseException | None = None
    action: Callable[..., None] | None = None
    repeat: bool = False
    fired: int = field(default=0)
    wants_ctx: bool = field(default=False)


_plans: dict[str, list[_Plan]] = {}
_hits: dict[str, int] = {}


def install(
    site: str,
    at: int = 1,
    exc: type[BaseException] | BaseException | None = None,
    action: Callable[..., None] | None = None,
    repeat: bool = False,
) -> None:
    """Arm ``site`` to fire on its ``at``-th hit (1-based).

    Exactly one of ``exc`` / ``action`` applies: ``action`` is called if
    given, otherwise ``exc`` (default :class:`InjectedFault`) is raised.
    With ``repeat`` the plan fires on every hit >= ``at``.  An action
    that declares parameters receives the keyword context the site
    passes to :func:`fire` (e.g. ``path=`` at the durable-write sites).
    """
    global enabled
    if at < 1:
        raise ValueError("at must be >= 1 (1-based hit count)")
    wants_ctx = False
    if action is not None:
        try:
            wants_ctx = bool(inspect.signature(action).parameters)
        except (TypeError, ValueError):  # builtins without signatures
            wants_ctx = False
    _plans.setdefault(site, []).append(
        _Plan(
            site=site, at=at, exc=exc, action=action, repeat=repeat,
            wants_ctx=wants_ctx,
        )
    )
    enabled = True


def clear(site: str | None = None) -> None:
    """Remove plans (for one site, or all) and reset hit counters.

    Clearing everything also disarms the process-level (row-targeted)
    chaos plans installed from :data:`CHAOS_ENV`.
    """
    global enabled, _env_installed
    if site is None:
        _plans.clear()
        _hits.clear()
        _row_chaos.clear()
        _env_installed = False
    else:
        _plans.pop(site, None)
        _hits.pop(site, None)
    enabled = bool(_plans)


def hits(site: str) -> int:
    """Hits recorded for ``site`` since its counter was last cleared."""
    return _hits.get(site, 0)


def fire(site: str, **context: Any) -> None:
    """Advance ``site``'s hit counter and trigger any due plan.

    Instrumented code guards the call with ``faultinject.enabled`` so an
    idle registry costs nothing; calling unconditionally is also safe.
    ``context`` keywords (e.g. ``path=`` at the durable-write sites) are
    forwarded to actions that declare parameters.
    """
    if not enabled:
        return
    plans = _plans.get(site)
    if not plans:
        return
    count = _hits.get(site, 0) + 1
    _hits[site] = count
    for plan in plans:
        due = count == plan.at or (plan.repeat and count >= plan.at)
        if not due:
            continue
        plan.fired += 1
        if plan.action is not None:
            if plan.wants_ctx:
                plan.action(**context)
            else:
                plan.action()
            continue
        exc = plan.exc
        if exc is None:
            raise InjectedFault(f"injected fault at {site} (hit {count})")
        if isinstance(exc, type):
            raise exc(f"injected fault at {site} (hit {count})")
        raise exc


@contextlib.contextmanager
def injected(
    site: str,
    at: int = 1,
    exc: type[BaseException] | BaseException | None = None,
    action: Callable[..., None] | None = None,
    repeat: bool = False,
) -> Iterator[None]:
    """Context manager: install a plan, always clear the site on exit."""
    install(site, at=at, exc=exc, action=action, repeat=repeat)
    try:
        yield
    finally:
        clear(site)


# ---------------------------------------------------------------------- #
# checkpoint-file attacks (used by the robustness suite)


def truncate_file(path: str | os.PathLike, keep_bytes: int = 3) -> None:
    """Truncate a file to ``keep_bytes`` — a torn write / partial flush."""
    with open(path, "r+b") as fh:
        fh.truncate(keep_bytes)


def corrupt_file(path: str | os.PathLike, garbage: bytes = b"\x00garbage{") -> None:
    """Overwrite a file's head with garbage — bit-rot / cross-write."""
    with open(path, "r+b") as fh:
        fh.seek(0)
        fh.write(garbage)


# ---------------------------------------------------------------------- #
# process-level chaos: plans parsed from the REPRO_CHAOS environment
# variable so supervisor worker processes inherit them

#: worker-process actions a row-targeted chaos entry may request
ROW_ACTIONS = frozenset({"kill", "exit", "hang", "stall"})

#: in-process sites a ``corrupt:``/``enospc:``/``raise:`` entry may target
_SITE_ACTIONS = frozenset({"corrupt", "enospc", "raise"})


@dataclass
class _RowChaos:
    action: str                # one of ROW_ACTIONS
    row: str                   # row key, or "*" for any row
    attempt: int | None        # process-level attempt, None = every attempt


_row_chaos: list[_RowChaos] = []
_env_installed = False


class ChaosSpecError(ValueError):
    """A ``REPRO_CHAOS`` spec entry could not be parsed."""


def _truncate_ctx(path: str | os.PathLike | None = None) -> None:
    """Corrupt-site action: tear the file the site is about to commit."""
    if path is not None:
        truncate_file(path, keep_bytes=7)


def install_chaos(spec: str) -> int:
    """Arm the chaos plans described by one ``REPRO_CHAOS``-style spec.

    Returns the number of entries installed.  Raises
    :class:`ChaosSpecError` on a malformed entry — a chaos harness that
    silently ignores a typo proves nothing.
    """
    installed = 0
    for raw in spec.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        action, sep, target = entry.partition(":")
        if not sep or not target:
            raise ChaosSpecError(f"chaos entry {entry!r}: expected action:target")
        target, at_sep, at_raw = target.partition("@")
        if action in ROW_ACTIONS:
            attempt: int | None = 0
            if at_sep:
                attempt = None if at_raw == "*" else int(at_raw)
            _row_chaos.append(_RowChaos(action=action, row=target, attempt=attempt))
        elif action in _SITE_ACTIONS:
            at = int(at_raw) if at_sep else 1
            if action == "corrupt":
                install(target, at=at, action=_truncate_ctx)
            elif action == "enospc":
                install(
                    target, at=at,
                    exc=OSError(errno.ENOSPC, "injected: no space left on device"),
                )
            else:
                install(target, at=at, exc=InjectedFault)
        else:
            raise ChaosSpecError(
                f"chaos entry {entry!r}: unknown action {action!r}"
            )
        installed += 1
    return installed


def install_from_env(environ: Any = None) -> int:
    """Arm chaos plans from :data:`CHAOS_ENV` (idempotent per process).

    Called by the supervisor's worker bootstrap and by ``repro chaos
    run`` in the parent; a process without the variable (or that already
    parsed it) installs nothing.  Returns the entries installed.
    """
    global _env_installed
    if _env_installed:
        return 0
    spec = (environ if environ is not None else os.environ).get(CHAOS_ENV)
    _env_installed = True
    if not spec:
        return 0
    return install_chaos(spec)


def chaos_row_action(row: str, attempt: int) -> str | None:
    """First armed row-targeted action due for ``(row, attempt)``.

    The supervisor's worker loop consults this as each row starts and
    enacts the verdict itself (SIGKILL / ``os._exit`` / heartbeat-dead
    hang / live-heartbeat stall) — the registry only decides *whether*.
    """
    for plan in _row_chaos:
        if plan.row not in ("*", row):
            continue
        if plan.attempt is not None and plan.attempt != attempt:
            continue
        return plan.action
    return None
