"""Resource-governed experiment runtime.

The robustness layer every long-running harness runs on (see
``docs/ROBUSTNESS.md``):

* :class:`Budget` — unified wall-clock deadline + conflict/backtrack/
  pattern caps, checked cooperatively inside the CDCL search loop, PODEM
  and the bit-parallel fault simulator;
* :func:`run_guarded` / :class:`RunOutcome` — convert timeouts, budget
  exhaustion and exceptions into structured ``{ok, timeout, budget,
  error}`` results instead of lost tables;
* :class:`CheckpointStore` — crash-safe per-row JSON checkpoints
  (atomic temp-file + rename) behind every experiment's ``--resume``;
* :class:`SupervisedPool` — the supervised worker fleet behind parallel
  campaigns: heartbeats, per-row watchdogs, crash retry with
  deterministic backoff, and poison-row quarantine;
* :mod:`repro.runtime.faultinject` — deterministic fault injection plus
  the ``REPRO_CHAOS`` process-level chaos harness used by the
  robustness test-suite to prove graceful degradation.
"""

from .budget import Budget, BudgetExhausted, DeadlineExpired, ResourceExhausted
from .checkpoint import CheckpointStore
from .outcome import RunOutcome, RunStatus, run_guarded, run_with_retry
from .supervisor import (
    CampaignInterrupted,
    PoolTask,
    SupervisedPool,
    WorkerFailure,
)
from . import faultinject

__all__ = [
    "Budget",
    "BudgetExhausted",
    "DeadlineExpired",
    "ResourceExhausted",
    "CampaignInterrupted",
    "CheckpointStore",
    "PoolTask",
    "RunOutcome",
    "RunStatus",
    "SupervisedPool",
    "WorkerFailure",
    "run_guarded",
    "run_with_retry",
    "faultinject",
]
