"""Resource-governed experiment runtime.

The robustness layer every long-running harness runs on (see
``docs/ROBUSTNESS.md``):

* :class:`Budget` — unified wall-clock deadline + conflict/backtrack/
  pattern caps, checked cooperatively inside the CDCL search loop, PODEM
  and the bit-parallel fault simulator;
* :func:`run_guarded` / :class:`RunOutcome` — convert timeouts, budget
  exhaustion and exceptions into structured ``{ok, timeout, budget,
  error}`` results instead of lost tables;
* :class:`CheckpointStore` — crash-safe per-row JSON checkpoints
  (atomic temp-file + rename) behind every experiment's ``--resume``;
* :mod:`repro.runtime.faultinject` — deterministic fault injection used
  by the robustness test-suite to prove graceful degradation.
"""

from .budget import Budget, BudgetExhausted, DeadlineExpired, ResourceExhausted
from .checkpoint import CheckpointStore
from .outcome import RunOutcome, RunStatus, run_guarded, run_with_retry
from . import faultinject

__all__ = [
    "Budget",
    "BudgetExhausted",
    "DeadlineExpired",
    "ResourceExhausted",
    "CheckpointStore",
    "RunOutcome",
    "RunStatus",
    "run_guarded",
    "run_with_retry",
    "faultinject",
]
