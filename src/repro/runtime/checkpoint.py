"""Crash-safe per-row experiment checkpoints.

Layout: one directory per experiment, one JSON file per row::

    <root>/<experiment>/
        row-<key>.json      # one completed (or failed) row
        ...

Serialization and durability live in :mod:`repro.runtime.codec` (shared
with the content-addressed result cache so the two layers cannot
drift): writes are atomic — canonical JSON to a temp file in the same
directory, then ``os.replace`` — so a checkpoint is either entirely
present or entirely absent no matter where the process died.  Reads are
paranoid: a truncated or corrupted file (torn write, bit rot) is
treated as missing and remembered in :attr:`CheckpointStore.corrupted`
so the harness recomputes and overwrites the row instead of crashing or
trusting garbage.

The payload written by :class:`repro.experiments.runner.ExperimentRunner`
is an envelope ``{"schema", "experiment", "key", "fingerprint", "status",
"row", ...}``; the store itself is schema-agnostic and just moves dicts.
"""

from __future__ import annotations

import os
import re
import warnings
from pathlib import Path
from typing import Any, Iterator

from .codec import CodecError, atomic_write_json, read_json

_KEY_RE = re.compile(r"[^A-Za-z0-9._=-]+")


def _sanitize(key: str) -> str:
    safe = _KEY_RE.sub("_", key)
    return safe or "_"


class CheckpointStore:
    """Directory of atomic per-row JSON checkpoints."""

    def __init__(self, root: str | os.PathLike, experiment: str | None = None):
        path = Path(root)
        if experiment:
            path = path / _sanitize(experiment)
        self.dir = path
        self.dir.mkdir(parents=True, exist_ok=True)
        #: row keys whose checkpoint files were unreadable/corrupt
        self.corrupted: list[str] = []

    # ------------------------------------------------------------------ #

    def path_for(self, key: str) -> Path:
        """Filesystem path of one row's checkpoint."""
        return self.dir / f"row-{_sanitize(key)}.json"

    def save(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically persist one row (temp file + rename)."""
        return atomic_write_json(
            self.path_for(key), payload, fault_site="checkpoint.save"
        )

    def load(self, key: str) -> dict[str, Any] | None:
        """Return a row's payload, or None when absent or corrupt.

        A torn or corrupted checkpoint (crash mid-write, bit rot) is
        never a traceback: the row is reported once via a warning and a
        ``checkpoint.corrupt`` telemetry counter, remembered in
        :attr:`corrupted`, and recomputed by the caller.
        """
        try:
            return read_json(self.path_for(key))
        except CodecError as exc:
            self.corrupted.append(key)
            from .. import telemetry

            telemetry.counter_add("checkpoint.corrupt")
            warnings.warn(
                f"skipping corrupt checkpoint for row {key!r} "
                f"({exc}); the row will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def discard(self, key: str) -> None:
        """Delete one row's checkpoint if present."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> list[str]:
        """Sanitized keys of every checkpoint currently on disk."""
        out = []
        for p in sorted(self.dir.glob("row-*.json")):
            out.append(p.name[len("row-"):-len(".json")])
        return out

    def clear(self) -> None:
        """Remove every checkpoint (and stray temp files)."""
        for p in self.dir.glob("row-*.json"):
            p.unlink()
        for p in self.dir.glob(".row-*.json.tmp"):
            p.unlink()
        self.corrupted.clear()

    def __len__(self) -> int:
        return sum(1 for _ in self.dir.glob("row-*.json"))

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CheckpointStore({str(self.dir)!r}, rows={len(self)})"
