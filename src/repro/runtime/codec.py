"""Shared row/payload serialization codec.

Both durable stores in this codebase — the per-row
:class:`~repro.runtime.checkpoint.CheckpointStore` behind ``--resume``
and the content-addressed :class:`~repro.cache.ResultCache` behind
``--cache`` — persist the *same* shape of data: a JSON envelope wrapping
one experiment row (or attack result) plus its outcome metadata.  They
also share the same durability discipline:

* **canonical serialization** — :func:`canonical_dumps` (sorted keys,
  compact separators) so identical payloads produce identical bytes,
  which is what makes content-addressing and byte-identical warm re-runs
  possible;
* **atomic writes** — :func:`atomic_write_text` (temp file in the same
  directory, fsync, ``os.replace``) so a payload is either entirely
  present or entirely absent no matter where the process died;
* **paranoid reads** — :func:`read_json` raises :class:`CodecError` on a
  truncated or corrupted file (torn write, bit rot) instead of returning
  garbage; callers degrade to a recompute/miss.

The row envelope itself (``{"fingerprint", "status", "row", ...}``) is
encoded/decoded by :func:`outcome_to_payload` / :func:`payload_to_outcome`
so the checkpoint and cache layers cannot drift apart.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

from . import faultinject
from .outcome import RunOutcome, RunStatus


class CodecError(ValueError):
    """A persisted payload could not be decoded (corrupt/truncated)."""


def canonical_dumps(payload: Any) -> str:
    """Serialize to canonical JSON: sorted keys, compact separators.

    Identical payloads always produce identical bytes — the property the
    content-addressed cache digests rely on.  Raises :class:`TypeError`
    for non-JSON-able values (callers decide whether that means "skip
    caching" or "bug").
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    fault_site: str | None = None,
) -> Path:
    """Atomically write ``text`` to ``path`` (temp + fsync + rename).

    ``fault_site``, when given, names a :mod:`repro.runtime.faultinject`
    site fired *between* the temp-file fsync and the rename — the
    robustness suite uses it to prove a crash leaves only the temp file
    behind.
    """
    final = Path(path)
    tmp = final.with_name(f".{final.name}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    if fault_site is not None and faultinject.enabled:
        # a crash here must leave only the temp file behind; the chaos
        # harness's ``corrupt:<site>`` plans receive the temp path and
        # tear it, so the rename below commits a torn write on purpose
        faultinject.fire(fault_site, path=tmp)
    os.replace(tmp, final)
    return final


def atomic_write_json(
    path: str | os.PathLike,
    payload: Any,
    fault_site: str | None = None,
) -> Path:
    """Atomically write a payload as canonical JSON."""
    return atomic_write_text(path, canonical_dumps(payload), fault_site)


def read_json(path: str | os.PathLike) -> dict[str, Any] | None:
    """Read a JSON dict persisted by :func:`atomic_write_json`.

    Returns None when the file does not exist; raises
    :class:`CodecError` when it exists but cannot be decoded to a dict
    (torn write, bit rot, tampering).  Callers treat the error as "entry
    absent, recompute" — never as trusted data.
    """
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CodecError(f"unreadable payload file {p}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CodecError(f"corrupt payload file {p}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CodecError(
            f"payload file {p} holds {type(payload).__name__}, expected dict"
        )
    return payload


# --------------------------------------------------------------------- #
# the row envelope shared by CheckpointStore users and ResultCache users


def outcome_to_payload(
    outcome: RunOutcome,
    encode: Callable[[Any], dict] | None = None,
    fingerprint: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Encode one :class:`RunOutcome` as the durable row envelope.

    ``encode`` converts the row value to a JSON-able dict (omitted when
    the raw value is already JSON-able).  ``fingerprint`` is the
    campaign-parameter dict resume/caching compare against; ``extra``
    merges additional fields (e.g. lint diagnostics) into the envelope.
    """
    value = outcome.value
    payload: dict[str, Any] = {
        "fingerprint": fingerprint or {},
        "status": outcome.status.value,
        "row": encode(value)
        if (encode is not None and value is not None)
        else value,
        "elapsed_s": round(outcome.elapsed_s, 6),
        "attempts": outcome.attempts,
        "error": outcome.error,
        "error_type": outcome.error_type,
    }
    quarantine = outcome.diagnostics.get("quarantine")
    if quarantine is not None:
        # poison-row verdicts persist their full attempt history so a
        # resumed campaign can report (and keep skipping) the row
        payload["quarantined"] = True
        payload["quarantine"] = quarantine
    if extra:
        payload.update(extra)
    return payload


def payload_to_outcome(
    payload: dict[str, Any],
    decode: Callable[[dict], Any] | None = None,
    provenance: str = "cached",
) -> RunOutcome | None:
    """Decode a row envelope back into a :class:`RunOutcome`.

    Returns None when the envelope is malformed (missing/unknown status)
    — corrupt durable state degrades to a recompute, never an exception.
    ``provenance`` labels the outcome's diagnostics (``{"cached": True}``
    vs ``{"result_cache": True}``) so reports can tell the layers apart.
    """
    status = payload.get("status")
    try:
        run_status = RunStatus(status)
    except ValueError:
        return None
    raw = payload.get("row")
    value = decode(raw) if (decode is not None and raw is not None) else raw
    diagnostics: dict[str, Any] = {provenance: True}
    if payload.get("quarantined"):
        diagnostics["quarantined"] = True
        if isinstance(payload.get("quarantine"), dict):
            diagnostics["quarantine"] = payload["quarantine"]
    return RunOutcome(
        status=run_status,
        value=value,
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
        error=payload.get("error"),
        error_type=payload.get("error_type"),
        attempts=int(payload.get("attempts", 1)),
        diagnostics=diagnostics,
    )
