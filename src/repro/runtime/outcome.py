"""Structured run outcomes: the ``{ok, timeout, budget, error}`` contract.

A long experiment campaign must never lose a whole table to one hung
solve or one raising attack.  :func:`run_guarded` executes a callable
under an optional :class:`~repro.runtime.budget.Budget` and converts the
three failure families into data:

* :class:`~repro.runtime.budget.DeadlineExpired` -> ``timeout``
* :class:`~repro.runtime.budget.BudgetExhausted` (and subclasses such as
  :class:`repro.attacks.oracle.OracleBudgetExceeded`) -> ``budget``
* any other :class:`Exception` -> ``error`` (with the traceback captured)

``KeyboardInterrupt``/``SystemExit`` always propagate — a killed process
must look killed, which is what checkpoint/resume exists for.

:func:`run_with_retry` layers a deterministic retry-with-backoff policy
on top: only ``error`` outcomes are retried (a timeout would time out
again under the same budget; a deliberate cap is not transient), each
attempt gets a fresh budget, and the backoff schedule is fixed
(``backoff_s * 2**attempt``) with an injectable sleep for tests.
"""

from __future__ import annotations

import enum
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from .budget import Budget, BudgetExhausted, DeadlineExpired, ResourceExhausted


class RunStatus(str, enum.Enum):
    """Terminal classification of one guarded run."""

    OK = "ok"
    TIMEOUT = "timeout"
    BUDGET = "budget"
    ERROR = "error"


@dataclass
class RunOutcome:
    """What happened when a unit of work ran.

    Attributes:
        status: terminal classification (see :class:`RunStatus`).
        value: the callable's return value (None unless ``ok``).
        elapsed_s: wall-clock duration of the final attempt.
        error: one-line description of the failure (non-``ok`` only).
        error_type: exception class name (non-``ok`` only).
        traceback: formatted traceback for ``error`` outcomes.
        attempts: total attempts made (>= 2 only under a retry policy).
        diagnostics: free-form extras (budget spend, retry history...).
    """

    status: RunStatus
    value: Any = None
    elapsed_s: float = 0.0
    error: str | None = None
    error_type: str | None = None
    traceback: str | None = None
    attempts: int = 1
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff the run completed normally."""
        return self.status is RunStatus.OK


def run_guarded(
    fn: Callable[..., Any],
    *args: Any,
    budget: Budget | None = None,
    **kwargs: Any,
) -> RunOutcome:
    """Run ``fn(*args, **kwargs)`` and classify the outcome.

    ``budget`` is not forwarded to the callable — close over it (or pass
    it via ``kwargs``) when the work should charge against it; here it
    only contributes its spend snapshot to the outcome diagnostics.
    Violations raised from any depth are caught and classified.
    """
    t0 = time.perf_counter()

    def _finish(outcome: RunOutcome) -> RunOutcome:
        outcome.elapsed_s = time.perf_counter() - t0
        if budget is not None:
            outcome.diagnostics.setdefault("budget", budget.spend())
        return outcome

    try:
        value = fn(*args, **kwargs)
    except DeadlineExpired as exc:
        return _finish(
            RunOutcome(
                RunStatus.TIMEOUT, error=str(exc), error_type=type(exc).__name__
            )
        )
    except BudgetExhausted as exc:
        return _finish(
            RunOutcome(
                RunStatus.BUDGET, error=str(exc), error_type=type(exc).__name__
            )
        )
    except ResourceExhausted as exc:  # custom kinds outside the two above
        status = RunStatus.TIMEOUT if exc.kind == "timeout" else RunStatus.BUDGET
        return _finish(
            RunOutcome(status, error=str(exc), error_type=type(exc).__name__)
        )
    except Exception as exc:
        return _finish(
            RunOutcome(
                RunStatus.ERROR,
                error=str(exc) or type(exc).__name__,
                error_type=type(exc).__name__,
                traceback=_traceback.format_exc(),
            )
        )
    return _finish(RunOutcome(RunStatus.OK, value=value))


def run_with_retry(
    fn: Callable[..., Any],
    *args: Any,
    budget_factory: Callable[[], Budget | None] | None = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs: Any,
) -> RunOutcome:
    """Guarded execution with deterministic retry-with-backoff.

    Only ``error`` outcomes are retried: timeouts and budget exhaustion
    are deliberate resource decisions, not transient faults.  Attempt
    ``i`` (0-based) sleeps ``backoff_s * 2**i`` before retrying and runs
    under a fresh budget from ``budget_factory``.  When the factory
    yields a budget, it is forwarded to ``fn`` as a ``budget`` keyword so
    the work can charge against it — ``fn`` must accept that keyword.
    """
    history: list[dict[str, Any]] = []
    outcome = RunOutcome(RunStatus.ERROR, error="never ran")
    attempts = max(1, retries + 1)
    for attempt in range(attempts):
        budget = budget_factory() if budget_factory is not None else None
        if budget is not None:
            # forwarded to fn by closure: run_guarded keeps its own
            # ``budget`` kwarg strictly for diagnostics
            outcome = run_guarded(
                lambda: fn(*args, budget=budget, **kwargs), budget=budget
            )
        else:
            outcome = run_guarded(fn, *args, **kwargs)
        if outcome.status is not RunStatus.ERROR or attempt == attempts - 1:
            break
        history.append(
            {"attempt": attempt + 1, "status": outcome.status.value,
             "error": outcome.error}
        )
        delay = backoff_s * (2 ** attempt)
        if delay > 0:
            sleep(delay)
    outcome.attempts = len(history) + 1
    if history:
        outcome.diagnostics["retry_history"] = history
    return outcome
