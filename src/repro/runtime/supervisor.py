"""Supervised worker fleet: crash/hang containment for campaign rows.

A bare :class:`~concurrent.futures.ProcessPoolExecutor` fails the way
the paper's workload cannot afford: a worker that dies (segfault, OOM
kill, ``os._exit`` deep in native code) raises ``BrokenProcessPool`` and
aborts every row in flight, and a worker hung in native code never
returns because :class:`~repro.runtime.budget.Budget` deadlines are
checked *cooperatively, in-process*.  :class:`SupervisedPool` replaces
it with a fleet the parent actively supervises:

* **its own worker processes** — one duplex pipe each, so a killed
  worker corrupts only its own channel, never a shared queue;
* **per-worker heartbeat files** — a daemon thread in each worker
  touches its file every ``heartbeat_interval_s``; a worker whose
  heartbeat goes stale (hung holding the GIL, stopped by the chaos
  harness, swapped to death) is detected and SIGKILLed even when no row
  deadline is set;
* **per-row wall-clock watchdogs** — a row dispatched under a deadline
  is allowed ``attempts × deadline + backoff + hang_grace_s`` of wall
  clock; past that the worker is SIGKILLed (the in-process budget
  clearly is not coming back);
* **pool rebuild + deterministic retry** — a crashed or hung worker is
  replaced and its row re-dispatched on the schedule
  :func:`~repro.runtime.outcome.run_with_retry` uses
  (``backoff_s * 2**attempt``, enforced as a not-before time so the
  fleet keeps serving other rows while one row backs off);
* **poison-row quarantine** — a row that takes its worker down
  ``worker_retries + 1`` times becomes a structured ``error`` outcome
  (``error_type="RowQuarantined"``) carrying the full process-level
  attempt history (exit codes, signals, detection kinds) in
  ``diagnostics["quarantine"]``; the campaign continues;
* **graceful drain** — SIGINT/SIGTERM (or :meth:`SupervisedPool.
  request_stop`) stops dispatching, kills in-flight workers, and raises
  :class:`CampaignInterrupted` so the driver can report "resumable at
  row k/n" instead of a ``concurrent.futures`` stack trace.  Completed
  rows were already delivered to ``on_result`` (which is where the
  experiment runner checkpoints them).

The pool is generic: it moves opaque picklable payloads to module-level
callables, so :mod:`repro.experiments.runner` can keep owning policy,
checkpointing, caching and telemetry wiring.  The chaos harness
(:mod:`repro.runtime.faultinject`'s ``REPRO_CHAOS`` plans) hooks in at
exactly two seams: the worker bootstrap re-arms plans from the
environment, and each row consults :func:`faultinject.chaos_row_action`
before computing — which is how ``repro chaos run`` proves all of the
above end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from pathlib import Path
from typing import Any, Callable

from .. import telemetry
from . import faultinject
from .outcome import RunOutcome, RunStatus

#: default extra wall clock a row may spend past its in-process budget
#: before the watchdog declares the worker hung
DEFAULT_HANG_GRACE_S = 30.0

#: default cadence of the worker heartbeat thread
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

#: supervision loop tick (result wait timeout / watchdog poll period)
_TICK_S = 0.05


class CampaignInterrupted(RuntimeError):
    """A campaign was stopped (SIGINT/SIGTERM) before finishing.

    Carries enough context for a clean one-line exit message; completed
    rows were already handed to the driver (and checkpointed there), so
    the campaign is resumable.
    """

    def __init__(self, done: int, total: int, experiment: str = "") -> None:
        self.done = done
        self.total = total
        self.experiment = experiment
        name = f"campaign {experiment!r}" if experiment else "campaign"
        super().__init__(
            f"{name} interrupted: resumable at row {done}/{total} — "
            f"completed rows are checkpointed; rerun with --resume"
        )


@dataclass
class WorkerFailure:
    """One process-level attempt failure (crash or hang) of one row."""

    kind: str                 # "crash" | "hang" | "stalled-heartbeat"
    worker: str               # worker name, e.g. "w3"
    exitcode: int | None      # raw Process.exitcode (negative = -signal)
    signal: int | None        # signal number when killed by one
    elapsed_s: float          # dispatch-to-detection wall clock
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view for quarantine diagnostics and reports."""
        return {
            "kind": self.kind,
            "worker": self.worker,
            "exitcode": self.exitcode,
            "signal": self.signal,
            "elapsed_s": round(self.elapsed_s, 6),
            "detail": self.detail,
        }


@dataclass
class PoolTask:
    """One unit of supervised work: an opaque payload keyed for chaos,
    quarantine reporting, and result routing."""

    index: int
    key: str
    payload: Any


@dataclass
class _Attempt:
    """A (re-)dispatchable row attempt with its retry state."""

    task: PoolTask
    attempt: int = 0
    not_before: float = 0.0     # monotonic; deterministic backoff gate
    failures: list[WorkerFailure] = field(default_factory=list)


@dataclass
class _Slot:
    """One live worker process and its supervision state."""

    name: str
    process: multiprocessing.process.BaseProcess
    conn: Connection
    heartbeat: Path
    busy: _Attempt | None = None
    dispatched_at: float = 0.0  # monotonic


# --------------------------------------------------------------------- #
# worker side


def _heartbeat_loop(path: Path, interval_s: float, stop: threading.Event) -> None:
    """Touch ``path`` every ``interval_s`` until told to stop."""
    while not stop.wait(interval_s):
        try:
            os.utime(path, None)
        except OSError:
            return  # heartbeat dir removed: parent is gone, stop quietly


def _enact_chaos(action: str, hb_stop: threading.Event) -> None:
    """Carry out a row-targeted chaos verdict inside the worker."""
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "exit":
        os._exit(42)
    elif action == "hang":
        # a worker that is alive but effectively dead: the heartbeat
        # stops, so only the stale-heartbeat monitor can see it
        hb_stop.set()
        while True:
            time.sleep(3600)
    elif action == "stall":
        # alive *and* heartbeating, but the row never finishes: only
        # the per-row deadline watchdog can see this one
        while True:
            time.sleep(3600)


def _worker_main(
    name: str,
    conn: Connection,
    heartbeat: Path,
    heartbeat_interval_s: float,
    row_fn: Callable[..., RunOutcome],
    row_arg: Any,
    init_fn: Callable[[Any], None] | None,
    init_arg: Any,
) -> None:
    """Worker process entry: serve row attempts until told to stop."""
    heartbeat.touch()
    hb_stop = threading.Event()
    hb = threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeat, heartbeat_interval_s, hb_stop),
        daemon=True,
    )
    hb.start()
    faultinject.install_from_env()
    if init_fn is not None:
        init_fn(init_arg)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent went away
            if message is None:
                return
            task_index, key, attempt = message[0], message[1], message[2]
            chaos = faultinject.chaos_row_action(key, attempt)
            if chaos is not None:
                _enact_chaos(chaos, hb_stop)
            try:
                outcome = row_fn(row_arg, key, message[3], attempt)
            except BaseException as exc:  # row_fn contract violation
                outcome = RunOutcome(
                    RunStatus.ERROR,
                    error=f"worker row runner raised: {exc}",
                    error_type=type(exc).__name__,
                )
            try:
                conn.send((task_index, outcome))
            except Exception as exc:
                # unpicklable outcome: degrade to a structured error so
                # the parent never waits on a row that silently vanished
                conn.send(
                    (
                        task_index,
                        RunOutcome(
                            RunStatus.ERROR,
                            error=f"result not transferable: {exc}",
                            error_type=type(exc).__name__,
                        ),
                    )
                )
    finally:
        hb_stop.set()


# --------------------------------------------------------------------- #
# parent side


class SupervisedPool:
    """Worker fleet with heartbeats, watchdogs, retry and quarantine.

    Args:
        jobs: worker process count.
        row_fn: module-level callable
            ``row_fn(row_arg, key, payload, attempt) -> RunOutcome``
            executed inside workers (must pickle).
        row_arg: first argument forwarded to every ``row_fn`` call.
        init_fn / init_arg: optional per-worker bootstrap (telemetry and
            cache configuration), run once per worker process.
        row_allowance_s: wall-clock allowance per dispatched row before
            the watchdog kills the worker (None disables the watchdog —
            the stale-heartbeat monitor still runs).
        hang_grace_s: margin added to ``row_allowance_s``.
        worker_retries: process-level retries per row; a row failing
            ``worker_retries + 1`` times is quarantined.
        backoff_s: base of the deterministic re-dispatch backoff
            (``backoff_s * 2**attempt``, the ``run_with_retry`` schedule).
        heartbeat_interval_s: worker heartbeat cadence; a heartbeat older
            than ``max(10 × interval, 5 s)`` marks the worker hung.
        experiment: campaign label for spans and interrupt messages.
    """

    def __init__(
        self,
        jobs: int,
        row_fn: Callable[..., RunOutcome],
        row_arg: Any = None,
        init_fn: Callable[[Any], None] | None = None,
        init_arg: Any = None,
        row_allowance_s: float | None = None,
        hang_grace_s: float = DEFAULT_HANG_GRACE_S,
        worker_retries: int = 1,
        backoff_s: float = 0.0,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_stale_s: float | None = None,
        experiment: str = "",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.row_fn = row_fn
        self.row_arg = row_arg
        self.init_fn = init_fn
        self.init_arg = init_arg
        self.row_allowance_s = row_allowance_s
        self.hang_grace_s = hang_grace_s
        self.worker_retries = max(0, worker_retries)
        self.backoff_s = backoff_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_stale_s = (
            heartbeat_stale_s
            if heartbeat_stale_s is not None
            else max(10.0 * heartbeat_interval_s, 5.0)
        )
        self.experiment = experiment
        self._ctx = multiprocessing.get_context()
        self._worker_seq = 0
        self._deaths = 0  # dead slots awaiting replacement (restart stat)
        self._stop = False
        self._stop_signal: int | None = None
        # session statistics (mirrored into telemetry counters)
        self.crashes = 0
        self.hangs = 0
        self.restarts = 0
        self.requeues = 0
        self.quarantined: dict[str, list[dict[str, Any]]] = {}

    # ------------------------------------------------------------------ #

    def request_stop(self, signum: int | None = None) -> None:
        """Ask the supervision loop to drain and raise
        :class:`CampaignInterrupted` (signal-handler safe)."""
        self._stop = True
        self._stop_signal = signum

    def run(
        self,
        tasks: list[PoolTask],
        on_result: Callable[[int, RunOutcome], None] | None = None,
    ) -> dict[int, RunOutcome]:
        """Run every task to a terminal outcome; returns them by index.

        ``on_result`` fires in the parent as each row completes (in
        completion order, not task order) — the experiment runner
        checkpoints there, so an interrupt never loses finished rows.
        """
        if not tasks:
            return {}
        results: dict[int, RunOutcome] = {}
        hb_dir = Path(tempfile.mkdtemp(prefix="repro-supervisor-"))
        pending: deque[_Attempt] = deque(_Attempt(task=t) for t in tasks)
        slots: list[_Slot] = []
        old_handlers: list[tuple[int, Any]] = []

        def deliver(index: int, outcome: RunOutcome) -> None:
            # every terminal verdict — computed, errored, or quarantined —
            # lands here exactly once; len(results) is the done counter
            results[index] = outcome
            if on_result is not None:
                on_result(index, outcome)

        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                old_handlers.append((signum, signal.getsignal(signum)))
                signal.signal(
                    signum,
                    lambda s, frame: self.request_stop(s),
                )
        with telemetry.span(
            "supervisor.run", experiment=self.experiment, jobs=self.jobs,
            rows=len(tasks),
        ) as sp:
            try:
                self._loop(tasks, pending, slots, hb_dir, deliver, results)
            except KeyboardInterrupt:
                # raised between handler installation windows (or with no
                # handler installed, e.g. off the main thread)
                self._stop = True
            finally:
                self._shutdown(slots)
                shutil.rmtree(hb_dir, ignore_errors=True)
                for signum, handler in old_handlers:
                    signal.signal(signum, handler)
                sp.set(
                    crashes=self.crashes,
                    hangs=self.hangs,
                    restarts=self.restarts,
                    quarantined=len(self.quarantined),
                    interrupted=self._stop,
                )
        telemetry.flush_counters()
        if self._stop:
            raise CampaignInterrupted(
                done=len(results), total=len(tasks), experiment=self.experiment
            )
        return results

    # ------------------------------------------------------------------ #
    # supervision loop internals

    def _spawn_slot(self, hb_dir: Path) -> _Slot:
        self._worker_seq += 1
        name = f"w{self._worker_seq}"
        heartbeat = hb_dir / f"hb-{name}"
        heartbeat.touch()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                name,
                child_conn,
                heartbeat,
                self.heartbeat_interval_s,
                self.row_fn,
                self.row_arg,
                self.init_fn,
                self.init_arg,
            ),
            name=f"repro-supervised-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Slot(
            name=name, process=process, conn=parent_conn, heartbeat=heartbeat
        )

    def _row_deadline_for(self, slot: _Slot) -> float | None:
        """Absolute monotonic time after which ``slot``'s row is hung."""
        if self.row_allowance_s is None:
            return None
        return slot.dispatched_at + self.row_allowance_s + self.hang_grace_s

    def _heartbeat_stale(self, slot: _Slot, now_wall: float) -> bool:
        try:
            mtime = slot.heartbeat.stat().st_mtime
        except OSError:
            return False  # not yet created or dir being torn down
        return (now_wall - mtime) > self.heartbeat_stale_s

    def _kill_slot(self, slot: _Slot) -> None:
        try:
            slot.process.kill()
        except (OSError, ValueError):
            pass
        slot.process.join(timeout=5.0)
        try:
            slot.conn.close()
        except OSError:
            pass

    def _fail_attempt(
        self,
        slot: _Slot,
        pending: deque[_Attempt],
        deliver: Callable[[int, RunOutcome], None],
        kind: str,
        detail: str,
    ) -> None:
        """Record a process-level failure; requeue or quarantine the row."""
        attempt = slot.busy
        slot.busy = None
        exitcode = slot.process.exitcode
        failure = WorkerFailure(
            kind=kind,
            worker=slot.name,
            exitcode=exitcode,
            signal=-exitcode if exitcode is not None and exitcode < 0 else None,
            elapsed_s=time.monotonic() - slot.dispatched_at,
            detail=detail,
        )
        if kind == "crash":
            self.crashes += 1
            telemetry.counter_add("supervisor.crashes")
        else:
            self.hangs += 1
            telemetry.counter_add("supervisor.hangs")
        if attempt is None:
            return  # idle worker died between rows: nothing to requeue
        attempt.failures.append(failure)
        attempts_made = attempt.attempt + 1
        if attempts_made <= self.worker_retries:
            delay = self.backoff_s * (2 ** attempt.attempt)
            attempt.attempt += 1
            attempt.not_before = time.monotonic() + delay
            pending.append(attempt)
            self.requeues += 1
            telemetry.counter_add("supervisor.requeues")
            return
        history = [f.to_dict() for f in attempt.failures]
        self.quarantined[attempt.task.key] = history
        telemetry.counter_add("supervisor.quarantined")
        last = attempt.failures[-1]
        outcome = RunOutcome(
            RunStatus.ERROR,
            error=(
                f"row {attempt.task.key!r} quarantined after "
                f"{attempts_made} process-level attempts "
                f"(last: {last.kind}, exitcode {last.exitcode})"
            ),
            error_type="RowQuarantined",
            elapsed_s=sum(f.elapsed_s for f in attempt.failures),
            attempts=attempts_made,
            diagnostics={
                "quarantine": {
                    "attempts": history,
                    "worker_retries": self.worker_retries,
                }
            },
        )
        deliver(attempt.task.index, outcome)

    def _handle_dead_slot(
        self,
        slot: _Slot,
        slots: list[_Slot],
        pending: deque[_Attempt],
        deliver: Callable[[int, RunOutcome], None],
        kind: str,
        detail: str,
    ) -> None:
        if kind != "crash":
            self._kill_slot(slot)
        else:
            slot.process.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._fail_attempt(slot, pending, deliver, kind, detail)
        slots.remove(slot)
        self._deaths += 1

    def _loop(
        self,
        tasks: list[PoolTask],
        pending: deque[_Attempt],
        slots: list[_Slot],
        hb_dir: Path,
        deliver: Callable[[int, RunOutcome], None],
        results: dict[int, RunOutcome],
    ) -> None:
        total = len(tasks)
        while len(results) < total and not self._stop:
            # 1. keep the fleet at strength while work remains
            want = min(self.jobs, len(pending) + sum(
                1 for s in slots if s.busy is not None
            ))
            while len(slots) < want:
                slots.append(self._spawn_slot(hb_dir))
                if self._deaths > 0:
                    self._deaths -= 1
                    self.restarts += 1
                    telemetry.counter_add("supervisor.restarts")

            # 2. dispatch due attempts to idle workers
            now = time.monotonic()
            idle = [s for s in slots if s.busy is None]
            deferred: list[_Attempt] = []
            while idle and pending:
                attempt = pending.popleft()
                if attempt.not_before > now:
                    deferred.append(attempt)
                    continue
                slot = idle.pop()
                try:
                    slot.conn.send(
                        (
                            attempt.task.index,
                            attempt.task.key,
                            attempt.attempt,
                            attempt.task.payload,
                        )
                    )
                except (OSError, ValueError) as exc:
                    # worker died before/while receiving: retry elsewhere
                    pending.appendleft(attempt)
                    slot.busy = None
                    self._handle_dead_slot(
                        slots=slots,
                        slot=slot,
                        pending=pending,
                        deliver=deliver,
                        kind="crash",
                        detail=f"dispatch failed: {exc}",
                    )
                    break
                slot.busy = attempt
                slot.dispatched_at = time.monotonic()
            pending.extend(deferred)

            # 3. wait for results (or a tick)
            busy = [s for s in slots if s.busy is not None]
            if not busy and not pending:
                break  # all delivered (quarantine counts as delivered)
            if busy:
                ready = connection_wait([s.conn for s in busy], timeout=_TICK_S)
            else:
                ready = []
                time.sleep(_TICK_S)  # everything pending is backing off
            for slot in [s for s in busy if s.conn in ready]:
                try:
                    task_index, outcome = slot.conn.recv()
                except (EOFError, OSError) as exc:
                    self._handle_dead_slot(
                        slot, slots, pending, deliver,
                        kind="crash", detail=f"pipe closed mid-row: {exc}",
                    )
                    continue
                slot.busy = None
                deliver(task_index, outcome)

            # 4. reap workers that died without a readable pipe event
            now_mono = time.monotonic()
            now_wall = time.time()
            for slot in list(slots):
                if not slot.process.is_alive() and slot.busy is not None:
                    # crash surfaced via waitpid before the pipe EOF; let
                    # the EOF path above handle it next tick unless the
                    # pipe is already drained
                    if not slot.conn.poll():
                        self._handle_dead_slot(
                            slot, slots, pending, deliver,
                            kind="crash",
                            detail=f"worker exited (code {slot.process.exitcode})",
                        )
                    continue
                if slot.busy is None:
                    if not slot.process.is_alive():
                        slots.remove(slot)  # idle death: replace next tick
                        self._deaths += 1
                    continue
                # 5. watchdog + stale-heartbeat checks for busy workers
                deadline = self._row_deadline_for(slot)
                if deadline is not None and now_mono > deadline:
                    self._handle_dead_slot(
                        slot, slots, pending, deliver,
                        kind="hang",
                        detail=(
                            f"row exceeded its {self.row_allowance_s:g}s "
                            f"allowance + {self.hang_grace_s:g}s grace"
                        ),
                    )
                    continue
                if (
                    now_mono - slot.dispatched_at > self.heartbeat_stale_s
                    and self._heartbeat_stale(slot, now_wall)
                ):
                    self._handle_dead_slot(
                        slot, slots, pending, deliver,
                        kind="stalled-heartbeat",
                        detail=(
                            f"no heartbeat for more than "
                            f"{self.heartbeat_stale_s:g}s"
                        ),
                    )

    def _shutdown(self, slots: list[_Slot]) -> None:
        """Stop every worker: polite stop for idle, SIGKILL for busy."""
        for slot in slots:
            if slot.busy is None and slot.process.is_alive():
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + 2.0
        for slot in slots:
            timeout = max(0.0, deadline - time.monotonic())
            slot.process.join(timeout=timeout)
            if slot.process.is_alive():
                self._kill_slot(slot)
            try:
                slot.conn.close()
            except OSError:
                pass
        slots.clear()
