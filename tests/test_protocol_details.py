"""Focused tests on subtle OraP protocol corners from Sect. II-A/III.

These complement test_orap_chip.py with the adversarial corners the paper
analyzes in prose.
"""

import random

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, protect


@pytest.fixture(scope="module")
def designs():
    seq = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=130, depth=7, seed=17,
                name="corner",
            ),
            n_flops=9,
        )
    )
    out = {}
    for variant in ("basic", "modified"):
        out[variant] = protect(
            seq,
            orap=OraPConfig(variant=variant),
            wll=WLLConfig(key_width=9, control_width=3, n_key_gates=4),
            rng=31,
        )
    return out


class TestKeyGuessing:
    def test_scanned_in_key_guess_gives_locked_guess_semantics(self, designs):
        """An attacker can scan a key guess into the LFSR cells and capture
        with it — but that only implements locked(guess), i.e. brute force."""
        d = designs["basic"]
        chip = d.build_chip()
        chip.reset()
        rng = random.Random(3)
        guess_bits = [rng.randrange(2) for _ in range(d.lfsr_config.size)]
        state = {ff.name: rng.randrange(2) for ff in d.design.flops}
        pi = {p: rng.randrange(2) for p in chip.primary_inputs}
        chip.enter_scan_mode()
        chip.scan_load(
            {**state, **{f"kr{i}": b for i, b in enumerate(guess_bits)}}
        )
        chip.scan_capture(pi)
        po = chip._last_capture_outputs
        asg = dict(pi)
        for k, b in zip(d.locked.key_inputs, guess_bits):
            asg[k] = b
        for ff in d.design.flops:
            asg[ff.q] = state[ff.name]
        values = d.design.core.evaluate(asg)
        assert po == {o: values[o] for o in chip.primary_outputs}

    def test_correct_guess_would_unlock_capture(self, designs):
        """Scanning in the *correct* key gives one correct capture — which
        is exactly why the key must stay secret; the space is 2^n."""
        d = designs["basic"]
        chip = d.build_chip()
        chip.reset()
        chip.enter_scan_mode()
        correct = {f"kr{i}": b for i, b in enumerate(d.locked.key_vector())}
        chip.scan_load(correct)
        assert chip.is_unlocked()  # register holds the key until SE rises


class TestUnlockRobustness:
    def test_unlock_is_repeatable_after_scan(self, designs):
        """Scan entry locks the chip; a fresh controller unlock restores
        it (periodic testing + re-activation, the paper's motivation for
        not blowing fuses)."""
        for variant, d in designs.items():
            chip = d.build_chip()
            chip.reset()
            chip.unlock()
            assert chip.is_unlocked(), variant
            chip.enter_scan_mode()
            chip.leave_scan_mode()
            assert not chip.is_unlocked(), variant
            chip.reset()
            chip.unlock()
            assert chip.is_unlocked(), variant

    def test_partial_key_sequence_leaves_chip_locked(self, designs):
        """Stopping the reseeding process early must not unlock."""
        d = designs["basic"]
        chip = d.build_chip()
        chip.reset()
        kr = chip.key_register
        kr.begin_unlock()
        stream = d.key_sequence.word_stream()
        n_points = kr.config.n_reseed
        for word in stream[:-1]:  # all but the last cycle
            bits = [0] * n_points
            if word is not None:
                for p, b in zip(d.memory_points, word):
                    bits[chip._point_index[p]] = b
            kr.unlock_step(bits)
        kr.freeze()
        assert not chip.is_unlocked()

    def test_tampered_seed_breaks_unlock(self, designs):
        """Flipping one stored seed bit yields a wrong final key."""
        d = designs["basic"]
        words = [list(w) for w in d.key_sequence.words]
        words[0][0] ^= 1
        from repro.orap import KeySequence

        tampered = KeySequence(
            schedule=d.key_sequence.schedule,
            words=tuple(tuple(w) for w in words),
        )
        import dataclasses

        d_bad = dataclasses.replace(d, key_sequence=tampered)
        chip = d_bad.build_chip()
        chip.reset()
        chip.unlock()
        assert not chip.is_unlocked()


class TestHillClimbOnTestResponses:
    def test_locked_test_responses_mislead_hill_climbing(self, designs):
        """The paper: under OraP the chip is tested locked, so published
        test responses describe the locked circuit and hill climbing
        converges to the wrong key."""
        from repro.attacks import HillClimbConfig, ScanOracle, hill_climb_attack, key_is_correct

        d = designs["basic"]
        chip = d.build_chip()
        chip.reset()
        chip.unlock()
        oracle = ScanOracle(chip)
        rng = random.Random(0)
        # "published" responses: gathered through the (OraP) scan interface
        test_set = []
        for _ in range(64):
            p = {i: rng.randrange(2) for i in oracle.inputs}
            test_set.append((p, oracle.query(p)))
        res = hill_climb_attack(
            d.locked.locked,
            d.locked.key_inputs,
            oracle,
            HillClimbConfig(restarts=3, seed=2),
            test_set=test_set,
        )
        assert not key_is_correct(d.locked, res.recovered_key)
