"""Additional coverage for the modified OraP scheme's chip behaviour."""

import random

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, TrojanHooks, protect


@pytest.fixture(scope="module")
def modified():
    design = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=140, depth=7, seed=19,
                name="mod",
            ),
            n_flops=10,
        )
    )
    return protect(
        design,
        orap=OraPConfig(variant="modified"),
        wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
        rng=23,
    )


class TestModifiedUnlock:
    def test_responses_really_feed_the_lfsr(self, modified):
        """Running the unlock with the response points disconnected (as if
        the attacker cut them) must NOT produce the correct key."""
        chip = modified.build_chip()
        chip.reset()
        kr = chip.key_register
        kr.begin_unlock()
        n_points = kr.config.n_reseed
        for word in modified.key_sequence.word_stream():
            bits = [0] * n_points
            if word is not None:
                for p, b in zip(modified.memory_points, word):
                    bits[chip._point_index[p]] = int(b)
            # deliberately omit the response-flop contributions
            kr.unlock_step(bits)
        kr.freeze()
        assert kr.key_bits() != list(modified.locked.key_vector())

    def test_unlock_from_non_reset_state_fails(self, modified):
        """The planner assumed the reset state; starting the unlock from a
        scan-loaded state changes the response stream and poisons the key
        (the very property defeating the freeze attack)."""
        chip = modified.build_chip()
        chip.reset()
        rng = random.Random(3)
        state = {ff.name: rng.randrange(2) for ff in modified.design.flops}
        if all(v == 0 for v in state.values()):
            state[modified.design.flops[0].name] = 1
        chip.enter_scan_mode()
        chip.scan_load(state)
        chip.leave_scan_mode()
        # don't reset: unlock with the tampered state
        chip.unlock()
        # with overwhelming probability the responses differed
        assert not chip.is_unlocked()

    def test_normal_unlock_still_fine_after_tamper_attempt(self, modified):
        chip = modified.build_chip()
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()

    def test_double_unlock_is_not_idempotent(self, modified):
        """Running the unlock sequence twice shifts the LFSR past the key:
        the controller must freeze after the planned cycle count."""
        chip = modified.build_chip()
        chip.reset()
        chip.unlock()
        key_after_first = chip.key_register.key_bits()
        chip.key_register.begin_unlock()
        chip.key_register.unlock_step([0] * chip.key_register.config.n_reseed)
        chip.key_register.freeze()
        assert chip.key_register.key_bits() != key_after_first


class TestModifiedWithTrojans:
    def test_shadow_register_still_works(self, modified):
        """Threat (c) is variant-independent: the shadow samples whatever
        the (correctly unlocked) register holds at scan entry."""
        hooks = TrojanHooks()
        chip = modified.build_chip(trojan=hooks)
        chip.reset()
        chip.unlock()
        hooks.shadow_register = True
        chip.enter_scan_mode()
        assert chip.shadow_state == list(modified.locked.key_vector())

    def test_freeze_trojan_blocks_unlock(self, modified):
        chip = modified.build_chip(trojan=TrojanHooks(freeze_normal_ffs=True))
        chip.reset()
        chip.unlock()
        assert not chip.is_unlocked()
