"""Tests for the Sect. III Trojan scenarios."""

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, protect
from repro.threats import (
    GE_NAND2_TO_NAND3,
    execute_freeze_attack,
    run_all_threats,
    threat_a_per_cell_suppression,
    threat_b_lfsr_bypass,
    threat_c_shadow_register,
    threat_d_xor_trees,
    threat_e_flop_freeze,
)


def _design(variant: str, placement: str = "interleaved"):
    seq = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=14, n_gates=110, depth=6, seed=4, name="thr"
            ),
            n_flops=8,
        )
    )
    return protect(
        seq,
        orap=OraPConfig(variant=variant, placement=placement),
        wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
        rng=9,
    )


@pytest.fixture(scope="module")
def basic():
    return _design("basic")


@pytest.fixture(scope="module")
def modified():
    return _design("modified")


class TestThreatA:
    def test_key_scanned_out(self, basic):
        rep = threat_a_per_cell_suppression(basic)
        assert rep.attack_effective
        assert rep.notes["cells_modified"] == 10

    def test_payload_scales_with_key_width(self, basic):
        rep = threat_a_per_cell_suppression(basic)
        assert rep.payload_ge == pytest.approx(10 * GE_NAND2_TO_NAND3)

    def test_paper_reference_128bit(self):
        # "roughly 64 NAND2 gates" for a 128-bit register
        assert 128 * GE_NAND2_TO_NAND3 == pytest.approx(64.0)


class TestThreatB:
    def test_oracle_restored(self, basic):
        rep = threat_b_lfsr_bypass(basic)
        assert rep.attack_effective

    def test_interleaving_inflates_mux_count(self):
        d_inter = _design("basic", placement="interleaved")
        d_clust = _design("basic", placement="clustered")
        r_inter = threat_b_lfsr_bypass(d_inter)
        r_clust = threat_b_lfsr_bypass(d_clust)
        assert r_inter.notes["n_mux"] > r_clust.notes["n_mux"]
        assert r_inter.payload_ge > r_clust.payload_ge


class TestThreatC:
    def test_shadow_restores_oracle(self, basic):
        rep = threat_c_shadow_register(basic)
        assert rep.attack_effective

    def test_payload_is_fairly_big(self, basic):
        rep = threat_c_shadow_register(basic)
        a = threat_a_per_cell_suppression(basic)
        assert rep.payload_ge > a.payload_ge  # "a fairly big Trojan payload"


class TestThreatD:
    def test_effective_against_basic_only(self, basic, modified):
        assert threat_d_xor_trees(basic).attack_effective
        assert not threat_d_xor_trees(modified).attack_effective

    def test_payload_reports_tree_size(self, basic):
        rep = threat_d_xor_trees(basic)
        assert rep.notes["xor_gate_count"] > 0
        assert rep.notes["mean_expression_size"] > 1.0


class TestThreatE:
    def test_succeeds_against_basic(self, basic):
        rep = threat_e_flop_freeze(basic)
        assert rep.attack_effective

    def test_fails_against_modified(self, modified):
        rep = threat_e_flop_freeze(modified)
        assert not rep.attack_effective

    def test_small_payload(self, basic):
        rep = threat_e_flop_freeze(basic)
        assert rep.payload_ge <= 10.0  # "just a few gates"

    def test_freeze_attack_flow_details(self, basic):
        import random

        rng = random.Random(1)
        state = {ff.name: rng.randrange(2) for ff in basic.design.flops}
        pi = {p: rng.randrange(2) for p in basic.chip.primary_inputs}
        po, captured, chip = execute_freeze_attack(basic, pi, state)
        assert set(captured) == {ff.name for ff in basic.design.flops}
        # against the basic scheme the attacker got a correct-key capture
        assignment = dict(pi)
        assignment.update(basic.locked.correct_key)
        for ff in basic.design.flops:
            assignment[ff.q] = state[ff.name]
        values = basic.design.core.evaluate(assignment)
        assert all(po[o] == values[o] for o in chip.primary_outputs)


class TestRunAll:
    def test_all_scenarios_present(self, basic):
        reps = run_all_threats(basic)
        assert len(reps) == 5
        labels = [r.scenario[0] for r in reps]
        assert labels == ["a", "b", "c", "d", "e"]

    def test_modified_blocks_d_and_e(self, modified):
        reps = {r.scenario[0]: r for r in run_all_threats(modified)}
        assert not reps["d"].attack_effective
        assert not reps["e"].attack_effective
        # a/b/c remain functionally effective (countered by detection cost)
        assert reps["a"].attack_effective
        assert reps["b"].attack_effective
        assert reps["c"].attack_effective
