"""Extra structural-attack coverage: candidate detection internals."""

import pytest

from repro.attacks import (
    find_removal_candidates,
    find_skewed_nets,
)
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import WLLConfig, lock_antisat, lock_sarlock, lock_weighted
from repro.netlist import GateType, Netlist


@pytest.fixture(scope="module")
def circuit():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=14, n_outputs=10, n_gates=110, depth=7, seed=9, name="d"
        )
    )


class TestRemovalCandidates:
    def test_sarlock_flip_found(self, circuit):
        sar = lock_sarlock(circuit, key_width=7, rng=2)
        cands = find_removal_candidates(sar.locked, sar.key_inputs)
        merges = {c.merge_gate for c in cands}
        assert sar.extra["protected_output"] in merges

    def test_wll_control_cones_found(self, circuit):
        wll = lock_weighted(
            circuit, WLLConfig(key_width=12, control_width=3, n_key_gates=6),
            rng=2,
        )
        cands = find_removal_candidates(wll.locked, wll.key_inputs)
        merges = {c.merge_gate for c in cands}
        # every weighted key gate is structurally identifiable
        assert set(wll.key_gate_nets) <= merges

    def test_unlocked_circuit_has_no_candidates(self, circuit):
        assert find_removal_candidates(circuit, []) == []

    def test_functional_xor_downstream_not_flagged(self):
        """An XOR with keys in BOTH cones is functional logic, not a merge."""
        nl = Netlist("fx")
        nl.add_input("a")
        nl.add_input("k")
        nl.add_gate("ka", GateType.XOR, ["a", "k"])  # key gate
        nl.add_gate("kb", GateType.NOT, ["ka"])
        nl.add_gate("y", GateType.XOR, ["ka", "kb"])  # keys in both cones
        nl.set_outputs(["y"])
        cands = find_removal_candidates(nl, ["k"])
        assert "y" not in {c.merge_gate for c in cands}


class TestSkewFinding:
    def test_antisat_y_is_top_candidate(self, circuit):
        ans = lock_antisat(circuit, half_width=8, rng=2)
        findings = find_skewed_nets(ans.locked, ans.key_inputs)
        assert findings
        assert findings[0].net == ans.extra["y_net"]
        assert findings[0].skew > 0.49

    def test_key_filter_excludes_functional_skew(self, circuit):
        ans = lock_antisat(circuit, half_width=8, rng=2)
        unfiltered = find_skewed_nets(ans.locked, None, min_skew=0.45)
        filtered = find_skewed_nets(ans.locked, ans.key_inputs, min_skew=0.45)
        assert len(filtered) <= len(unfiltered)
        for f in filtered:
            cone = ans.locked.transitive_fanin([f.net])
            assert cone & set(ans.key_inputs)

    def test_clean_circuit_no_candidates(self, circuit):
        assert find_skewed_nets(circuit, [], min_skew=0.45) == []
