"""Tests for the ATPG substrate: faults, fault simulation, PODEM, SAT-ATPG."""

import itertools

import pytest

from repro.atpg import (
    PODEM,
    Fault,
    FaultSimulator,
    TestOutcome,
    collapse_faults,
    full_fault_list,
    inject_fault,
    run_atpg,
    sat_generate,
)
from repro.bench import GeneratorConfig, c17, generate_netlist, ripple_adder
from repro.netlist import GateType, Netlist
from repro.sim import random_words


@pytest.fixture(scope="module")
def redundant_circuit():
    """y = a OR (a AND b): the AND's influence is absorbed; several faults
    are untestable."""
    nl = Netlist("red")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("t", GateType.AND, ["a", "b"])
    nl.add_gate("y", GateType.OR, ["a", "t"])
    nl.set_outputs(["y"])
    return nl


class TestFaultModel:
    def test_full_list_counts_c17(self):
        nl = c17()
        full = full_fault_list(nl)
        # 11 nets x 2 output faults + 2 faults per branch pin of the three
        # fanout-2 nets (G3, G11, G16 -> 6 pins)
        assert len(full) == 22 + 12

    def test_collapsing_drops_nand_sa0_inputs(self):
        nl = c17()
        collapsed = collapse_faults(nl)
        assert len(collapsed) == 28  # 34 - 6 NAND input-sa0 faults
        for f in collapsed:
            if f.pin is not None:
                assert f.stuck_at == 1  # only sa1 input faults survive NAND

    def test_buf_not_input_faults_collapsed(self):
        nl = Netlist("b")
        nl.add_input("a")
        nl.add_gate("m", GateType.BUF, ["a"])
        nl.add_gate("n", GateType.NOT, ["a"])
        nl.add_gate("y", GateType.AND, ["m", "n"])
        nl.set_outputs(["y"])
        collapsed = collapse_faults(nl)
        assert all(
            f.pin is None or f.gate == "y" for f in collapsed
        )

    def test_site_net(self):
        nl = c17()
        f = Fault("G22", None, 0)
        assert f.site_net(nl) == "G22"
        f2 = Fault("G22", 1, 1)
        assert f2.site_net(nl) == "G16"

    def test_describe(self):
        assert Fault("g", None, 0).describe() == "g/sa0"
        assert Fault("g", 2, 1).describe() == "g.in2/sa1"


class TestFaultSimulator:
    def test_against_structural_injection(self):
        """PPSFP detection must equal simulating the injected netlist."""
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=8, n_outputs=6, n_gates=60, depth=5, seed=12, name="fs"
            )
        )
        sim = FaultSimulator(nl)
        words = random_words(len(nl.inputs), 64, seed=3)
        in_words = {n: words[i] for i, n in enumerate(nl.inputs)}
        good = sim.good_values(in_words)
        from repro.sim import BitSimulator

        for fault in collapse_faults(nl)[:60]:
            mask = sim.detects(fault, good, 64)
            faulty = inject_fault(nl, fault)
            fsim = BitSimulator(faulty)
            out_f = fsim.run_outputs({n: in_words[n] for n in faulty.inputs})
            out_g = BitSimulator(nl).run_outputs(in_words)
            want_any = bool((out_f ^ out_g).any())
            assert bool(mask.any()) == want_any, fault.describe()

    def test_detects_pattern_scalar(self):
        nl = c17()
        sim = FaultSimulator(nl)
        # G22 stuck-at-0: pattern making G22=1 detects it
        asg = {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1}
        assert nl.evaluate_outputs(asg)["G22"] == 1
        assert sim.detects_pattern(Fault("G22", None, 0), asg)
        assert not sim.detects_pattern(Fault("G22", None, 1), asg)


class TestPODEM:
    @pytest.mark.parametrize("maker", [c17, lambda: ripple_adder(3)])
    def test_exact_against_exhaustive(self, maker):
        nl = maker()
        podem = PODEM(nl, max_backtracks=500)
        fsim = FaultSimulator(nl)
        for fault in collapse_faults(nl):
            detectable = any(
                fsim.detects_pattern(fault, dict(zip(nl.inputs, bits)))
                for bits in itertools.product([0, 1], repeat=len(nl.inputs))
            )
            result = podem.generate(fault)
            if result.outcome is TestOutcome.DETECTED:
                assert detectable
                assert fsim.detects_pattern(fault, result.pattern)
            elif result.outcome is TestOutcome.REDUNDANT:
                # PODEM may misclassify composite-X cases; the engine's SAT
                # arbiter corrects them — here just confirm via SAT
                sat = sat_generate(nl, fault)
                assert (sat.outcome is TestOutcome.DETECTED) == detectable

    def test_redundant_fault_found(self, redundant_circuit):
        podem = PODEM(redundant_circuit, max_backtracks=100)
        # t stuck-at-0 is undetectable: y = a OR (a AND b) == a
        result = podem.generate(Fault("t", None, 0))
        assert result.outcome is TestOutcome.REDUNDANT


class TestSATGenerate:
    def test_exact_on_c17(self):
        nl = c17()
        fsim = FaultSimulator(nl)
        for fault in collapse_faults(nl):
            r = sat_generate(nl, fault)
            assert r.outcome is TestOutcome.DETECTED
            assert fsim.detects_pattern(fault, r.pattern)

    def test_redundancy_proof(self, redundant_circuit):
        r = sat_generate(redundant_circuit, Fault("t", None, 0))
        assert r.outcome is TestOutcome.REDUNDANT

    def test_inject_fault_output(self):
        nl = c17()
        faulty = inject_fault(nl, Fault("G22", None, 1))
        assert faulty.gate("G22").gtype is GateType.CONST1

    def test_inject_fault_pin(self):
        nl = c17()
        faulty = inject_fault(nl, Fault("G22", 0, 0))
        g = faulty.gate("G22")
        stuck = g.fanin[0]
        assert faulty.gate(stuck).gtype is GateType.CONST0
        # the other consumer of G10 is untouched
        assert "G10" in faulty.nets

    def test_inject_fault_on_input_net(self):
        nl = c17()
        faulty = inject_fault(nl, Fault("G1", None, 1))
        # G1 remains an input pin; consumers see constant 1
        assert "G1" in faulty.inputs
        out_all0 = faulty.evaluate_outputs(
            {"G1": 0, "G2": 0, "G3": 1, "G6": 0, "G7": 0}
        )
        want = nl.evaluate_outputs({"G1": 1, "G2": 0, "G3": 1, "G6": 0, "G7": 0})
        assert out_all0 == want


class TestEngine:
    def test_c17_full_coverage(self):
        rep = run_atpg(c17(), n_random_patterns=0)
        assert rep.fault_coverage_percent == 100.0
        assert rep.redundant_plus_aborted == 0
        assert rep.n_detected == rep.n_faults == 28

    def test_redundant_counted(self, redundant_circuit):
        rep = run_atpg(redundant_circuit, n_random_patterns=0)
        assert rep.n_redundant > 0
        assert rep.fault_coverage_percent < 100.0
        assert rep.n_aborted == 0

    def test_random_phase_does_the_heavy_lifting(self):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=80, depth=6, seed=2, name="e"
            )
        )
        rep = run_atpg(nl, n_random_patterns=512)
        assert rep.n_random_detected > rep.n_faults * 0.8

    def test_patterns_collected_when_asked(self):
        rep = run_atpg(c17(), n_random_patterns=0, collect_patterns=True)
        assert rep.n_patterns == len(rep.patterns) > 0

    def test_engine_choices_agree(self):
        nl = ripple_adder(3)
        reps = {
            engine: run_atpg(nl, n_random_patterns=0, deterministic=engine)
            for engine in ("sat", "podem+sat")
        }
        assert (
            reps["sat"].fault_coverage_percent
            == reps["podem+sat"].fault_coverage_percent
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_atpg(c17(), deterministic="magic")

    def test_key_inputs_act_as_test_inputs(self):
        """The Table II effect: a locked circuit with free key inputs has
        fault coverage at least as high as the original."""
        from repro.locking import WLLConfig, lock_weighted

        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=12, n_outputs=10, n_gates=110, depth=6, seed=7, name="t2"
            )
        )
        locked = lock_weighted(
            nl, WLLConfig(key_width=9, control_width=3, n_key_gates=4), rng=3
        )
        rep_orig = run_atpg(nl, n_random_patterns=512)
        rep_prot = run_atpg(locked.locked, n_random_patterns=512)
        assert (
            rep_prot.fault_coverage_percent
            >= rep_orig.fault_coverage_percent - 1.0
        )
