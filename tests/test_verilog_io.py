"""Tests for the structural Verilog writer."""

from repro.bench import c17, s27_like
from repro.netlist import GateType, Netlist, write_verilog


class TestCombinationalWriter:
    def test_module_structure(self):
        text = write_verilog(c17())
        assert text.startswith("module c17")
        assert text.rstrip().endswith("endmodule")
        assert "input G1;" in text
        assert "output G22;" in text
        assert text.count("nand ") == 6

    def test_constants_and_mux(self):
        nl = Netlist("m")
        nl.add_input("s")
        nl.add_gate("one", GateType.CONST1)
        nl.add_gate("zero", GateType.CONST0)
        nl.add_gate("y", GateType.MUX, ["s", "zero", "one"])
        nl.set_outputs(["y"])
        text = write_verilog(nl)
        assert "assign one = 1'b1;" in text
        assert "assign y = s ? one : zero;" in text

    def test_name_escaping(self):
        nl = Netlist("esc")
        nl.add_input("a[0]")
        nl.add_gate("y", GateType.NOT, ["a[0]"])
        nl.set_outputs(["y"])
        text = write_verilog(nl)
        assert "\\a[0] " in text


class TestSequentialWriter:
    def test_scan_ports_present(self):
        text = write_verilog(s27_like())
        assert "input clk, scan_enable, scan_in;" in text
        assert "output scan_out;" in text
        assert "always @(posedge clk)" in text
        assert "scan_enable ?" in text

    def test_flop_state_regs(self):
        text = write_verilog(s27_like())
        assert "reg ff5_state;" in text
        assert "assign Q5 = ff5_state;" in text
