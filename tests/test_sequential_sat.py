"""Tests for the sequential (unrolled) SAT attack."""

import pytest

from repro.attacks import (
    FunctionalOracle,
    SequentialSATConfig,
    key_is_correct,
    sequential_sat_attack,
)
from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, protect


@pytest.fixture(scope="module")
def small_design():
    design = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=8, n_outputs=10, n_gates=60, depth=5, seed=16,
                name="seq60",
            ),
            n_flops=4,
        )
    )
    return protect(
        design,
        orap=OraPConfig(variant="basic"),
        wll=WLLConfig(key_width=6, control_width=3, n_key_gates=2),
        rng=5,
    )


class TestFunctionalOracle:
    def test_traces_are_deterministic(self, small_design):
        chip = small_design.build_chip()
        oracle = FunctionalOracle(chip)
        seq = [
            {p: (t + i) % 2 for i, p in enumerate(chip.primary_inputs)}
            for t in range(5)
        ]
        t1 = oracle.query_sequence(seq)
        t2 = oracle.query_sequence(seq)
        assert t1 == t2
        assert oracle.n_queries == 2

    def test_trace_matches_unlocked_semantics(self, small_design):
        """The functional oracle exposes correct-key behaviour — OraP does
        not (and cannot) hide normal operation, only the scan oracle."""
        chip = small_design.build_chip()
        oracle = FunctionalOracle(chip)
        seq = [{p: 1 for p in chip.primary_inputs} for _ in range(3)]
        trace = oracle.query_sequence(seq)
        # replay with the reference model from the chip's post-unlock state
        chip.reset()
        chip.unlock()
        for pi, want in zip(seq, trace):
            got = chip.observe_outputs(pi)
            assert got == want
            chip.functional_cycle(pi)


class TestSequentialAttack:
    def test_recovers_key_through_functional_access(self, small_design):
        chip = small_design.build_chip()
        oracle = FunctionalOracle(chip)
        res = sequential_sat_attack(
            small_design.design,
            small_design.locked.key_inputs,
            oracle,
            SequentialSATConfig(depth=4, max_iterations=32, verify_sequences=4),
        )
        assert res.completed
        assert key_is_correct(small_design.locked, res.recovered_key)
        assert res.notes["verified"]

    def test_cost_is_sequential_not_combinational(self, small_design):
        """The attack needed multi-cycle queries — each one a full
        reset+unlock+run session — instead of single scan transactions."""
        chip = small_design.build_chip()
        oracle = FunctionalOracle(chip)
        res = sequential_sat_attack(
            small_design.design,
            small_design.locked.key_inputs,
            oracle,
            SequentialSATConfig(depth=4, max_iterations=32, verify_sequences=2),
        )
        assert res.oracle_queries >= res.iterations + 2
