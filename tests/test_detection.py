"""Tests for the power side-channel detectability model (ref. [25])."""

import pytest

from repro.bench import GeneratorConfig, generate_netlist
from repro.threats.detection import (
    DetectabilityReport,
    circuit_power_weights,
    detection_vs_segmentation,
    switching_activity,
    trojan_detectability,
)


@pytest.fixture(scope="module")
def host():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=16, n_outputs=12, n_gates=300, depth=9, seed=13, name="host"
        )
    )


class TestActivity:
    def test_activity_in_unit_range(self, host):
        act = switching_activity(host, n_pattern_pairs=256)
        assert act
        for net, a in act.items():
            assert 0.0 <= a <= 1.0

    def test_balanced_nets_toggle_often(self, host):
        """Probability-balanced circuits toggle near 0.5 on average."""
        act = switching_activity(host, n_pattern_pairs=512)
        internal = [
            a for n, a in act.items() if not host.gate(n).gtype.is_source
        ]
        mean = sum(internal) / len(internal)
        assert 0.3 <= mean <= 0.6

    def test_weights_zero_for_sources(self, host):
        w = circuit_power_weights(host)
        for i in host.inputs:
            assert w[i] == 0.0


class TestDetectability:
    def test_large_payload_detectable(self, host):
        rep = trojan_detectability(host, payload_ge=100.0, n_segments=8)
        assert isinstance(rep, DetectabilityReport)
        assert rep.detectable
        assert rep.z_score >= rep.threshold

    def test_tiny_payload_hides_in_one_segment(self, host):
        rep = trojan_detectability(host, payload_ge=0.5, n_segments=1)
        assert not rep.detectable

    def test_z_monotone_in_payload(self, host):
        z = [
            trojan_detectability(host, payload_ge=p, n_segments=8).z_score
            for p in (1.0, 10.0, 100.0)
        ]
        assert z[0] < z[1] < z[2]

    def test_segmentation_raises_detection(self, host):
        """The [25] lever: finer partitioning shrinks the hiding baseline."""
        rows = detection_vs_segmentation(
            host, payload_ge=6.0, segment_counts=(1, 4, 16)
        )
        zs = [z for _, z, _ in rows]
        assert zs[0] < zs[1] < zs[2]

    def test_threat_a_at_paper_size_detectable(self, host):
        """The paper's 128-bit threat-(a) payload (~64 GE) must be
        detectable with modest partitioning on a mid-size host."""
        rep = trojan_detectability(host, payload_ge=64.0, n_segments=8)
        assert rep.detectable

    def test_empty_circuit_rejected(self):
        from repro.netlist import Netlist

        nl = Netlist("empty")
        nl.add_input("a")
        nl.set_outputs(["a"])
        with pytest.raises(ValueError):
            trojan_detectability(nl, payload_ge=1.0)


class TestAssessIntegration:
    def test_assess_threat_detectability_rows(self, host):
        from repro.threats import ThreatReport, assess_threat_detectability

        reports = [
            ThreatReport("a: x", True, 64.0),
            ThreatReport("e: y", True, 2.0),
        ]
        rows = assess_threat_detectability(host, reports, n_segments=8)
        assert len(rows) == 2
        assert rows[0].detectable and not rows[1].detectable
        assert rows[0].z_score > rows[1].z_score

    def test_trojan_table_carries_detectability(self):
        from repro.experiments import run_trojan_table

        rows = run_trojan_table(seed=7)
        by = {(r.variant, r.scenario[0]): r for r in rows}
        assert by[("basic", "d")].detection_z > by[("basic", "e")].detection_z
        assert not by[("basic", "e")].detectable
