"""Tests for the AIG-backed CNF encoder used by the SAT attacks."""

import itertools
import random


from repro.attacks.encoding import AIGEncoder
from repro.bench import GeneratorConfig, c17, generate_netlist, ripple_adder
from repro.sat import Solver


class TestAIGEncoder:
    def test_single_copy_matches_circuit(self):
        nl = c17()
        solver = Solver()
        enc = AIGEncoder(solver)
        in_lits = {name: enc.fresh_pi(name) for name in nl.inputs}
        outs = enc.encode_netlist(nl, in_lits)
        out_sat = {o: enc.sat_literal(lit) for o, lit in outs.items()}
        for bits in itertools.product([0, 1], repeat=5):
            assumptions = []
            for name, b in zip(nl.inputs, bits):
                v = enc.pi_var(in_lits[name])
                assumptions.append(v if b else -v)
            res = solver.solve(assumptions=assumptions)
            assert res.sat
            want = nl.evaluate_outputs(dict(zip(nl.inputs, bits)))
            for o in nl.outputs:
                lit = out_sat[o]
                got = res.model[abs(lit)] ^ (lit < 0)
                assert int(got) == want[o], (bits, o)

    def test_constant_inputs_fold(self):
        nl = ripple_adder(3)
        solver = Solver()
        enc = AIGEncoder(solver)
        const = {name: 1 for name in nl.inputs}
        outs = enc.encode_netlist(nl, {}, const_inputs=const)
        want = nl.evaluate_outputs(const)
        for o, lit in outs.items():
            # with all inputs constant, outputs fold to AIG constants
            enc.assert_equals(lit, want[o])
        assert solver.solve().sat  # consistent: all asserts satisfied

    def test_conflicting_constant_assert_unsat(self):
        nl = ripple_adder(2)
        solver = Solver()
        enc = AIGEncoder(solver)
        const = {name: 0 for name in nl.inputs}
        outs = enc.encode_netlist(nl, {}, const_inputs=const)
        # all-zero add: s0 = 0; asserting 1 must be UNSAT
        enc.assert_equals(outs["s0"], 1)
        assert not solver.solve().sat

    def test_shared_key_variables_across_copies(self):
        nl = generate_netlist(
            GeneratorConfig(n_inputs=6, n_outputs=4, n_gates=30, depth=4,
                            seed=3, name="e")
        )
        solver = Solver()
        enc = AIGEncoder(solver)
        shared = {name: enc.fresh_pi(name) for name in nl.inputs}
        o1 = enc.encode_netlist(nl, shared)
        o2 = enc.encode_netlist(nl, shared)
        # identical copies over shared PIs strash to the same literals
        for o in nl.outputs:
            assert o1[o] == o2[o]

    def test_diff_literal_semantics(self):
        solver = Solver()
        enc = AIGEncoder(solver)
        a = enc.fresh_pi("a")
        b = enc.fresh_pi("b")
        d = enc.diff_literal([(a, b)])
        ds = enc.sat_literal(d)
        va, vb = enc.pi_var(a), enc.pi_var(b)
        assert solver.solve(assumptions=[ds, va, -vb]).sat
        assert not solver.solve(assumptions=[ds, va, vb]).sat

    def test_random_copy_equivalence(self):
        """Encoded copy agrees with direct evaluation on random vectors."""
        nl = generate_netlist(
            GeneratorConfig(n_inputs=10, n_outputs=6, n_gates=70, depth=5,
                            seed=5, name="r")
        )
        solver = Solver()
        enc = AIGEncoder(solver)
        in_lits = {name: enc.fresh_pi(name) for name in nl.inputs}
        outs = enc.encode_netlist(nl, in_lits)
        out_sat = {o: enc.sat_literal(ol) for o, ol in outs.items()}
        rng = random.Random(0)
        for _ in range(25):
            asg = {i: rng.randrange(2) for i in nl.inputs}
            assumptions = [
                enc.pi_var(in_lits[i]) if b else -enc.pi_var(in_lits[i])
                for i, b in asg.items()
            ]
            res = solver.solve(assumptions=assumptions)
            assert res.sat
            want = nl.evaluate_outputs(asg)
            for o in nl.outputs:
                lit = out_sat[o]
                if abs(lit) in res.model:
                    got = int(res.model[abs(lit)]) ^ (lit < 0)
                    assert got == want[o]
