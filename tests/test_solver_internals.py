"""White-box tests for CDCL solver internals."""

import random

import pytest

from repro.sat import CNF, BudgetExhausted, Solver, solve_cnf
from repro.sat.solver import _luby


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers_appear(self):
        seq = [_luby(i) for i in range(127)]
        assert 16 in seq and 32 in seq


class TestIncrementalSafety:
    def test_add_clause_rejected_mid_decision(self):
        s = Solver()
        s.add_clause([1, 2])
        s._trail_lim.append(0)  # simulate an open decision level
        with pytest.raises(RuntimeError):
            s.add_clause([3])
        s._trail_lim.pop()

    def test_level0_simplification(self):
        s = Solver()
        s.add_clause([1])  # unit: level-0 fact
        # a clause satisfied at level 0 is dropped silently
        assert s.add_clause([1, 2])
        # a falsified literal is removed from new clauses
        assert s.add_clause([-1, 3])
        r = s.solve()
        assert r.sat and r.model[3] is True

    def test_trivially_unsat_via_units(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().sat
        # further clauses keep reporting failure
        assert not s.add_clause([2])

    def test_solver_reusable_after_unsat_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        assert not s.solve(assumptions=[-2]).sat
        r = s.solve()
        assert r.sat and r.model[2] is True
        # repeated alternation keeps working
        for _ in range(3):
            assert not s.solve(assumptions=[-2]).sat
            assert s.solve().sat


class TestLearnedClauseMachinery:
    def test_db_reduction_preserves_correctness(self):
        """Force clause-DB reductions and confirm UNSAT is still proven."""

        def php(n):
            cnf = CNF()
            var = {}
            for p in range(n + 1):
                for h in range(n):
                    var[p, h] = cnf.new_var()
            for p in range(n + 1):
                cnf.add_clause([var[p, h] for h in range(n)])
            for h in range(n):
                for p1 in range(n + 1):
                    for p2 in range(p1 + 1, n + 1):
                        cnf.add_clause([-var[p1, h], -var[p2, h]])
            return cnf

        s = Solver(php(6))
        s._max_learned = 50  # force frequent reductions
        assert not s.solve().sat

    def test_budget_exhausted_leaves_solver_usable(self):
        def php(n):
            cnf = CNF()
            var = {}
            for p in range(n + 1):
                for h in range(n):
                    var[p, h] = cnf.new_var()
            for p in range(n + 1):
                cnf.add_clause([var[p, h] for h in range(n)])
            for h in range(n):
                for p1 in range(n + 1):
                    for p2 in range(p1 + 1, n + 1):
                        cnf.add_clause([-var[p1, h], -var[p2, h]])
            return cnf

        s = Solver(php(7))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=10)
        # the solver keeps its learned clauses and can finish later
        assert not s.solve().sat


class TestModelCompleteness:
    @pytest.mark.parametrize("seed", range(4))
    def test_models_cover_all_variables(self, seed):
        rng = random.Random(seed)
        cnf = CNF()
        nv = 12
        cnf.n_vars = nv
        for _ in range(20):
            lits = rng.sample(range(1, nv + 1), 3)
            cnf.add_clause([lit if rng.random() < 0.5 else -lit for lit in lits])
        r = solve_cnf(cnf)
        if r.sat:
            assert set(r.model) == set(range(1, nv + 1))

    def test_isolated_variables_get_values(self):
        cnf = CNF()
        cnf.n_vars = 5  # vars 2..5 appear in no clause
        cnf.add_clause([1])
        r = solve_cnf(cnf)
        assert r.sat
        assert set(r.model) == {1, 2, 3, 4, 5}
