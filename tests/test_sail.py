"""Tests for the SAIL-style structural ML attack."""

import numpy as np
import pytest

from repro.attacks import (
    LogisticModel,
    extract_key_features,
    key_accuracy,
    resynthesize,
    sail_attack,
    train_sail_model,
)
from repro.attacks.sail import N_FEATURES, generate_training_set
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import WLLConfig, lock_random, lock_weighted


@pytest.fixture(scope="module")
def model():
    return train_sail_model(n_circuits=14, key_width=8, seed=1)


class TestPieces:
    def test_resynthesis_dissolves_key_gates(self):
        host = generate_netlist(
            GeneratorConfig(n_inputs=10, n_outputs=6, n_gates=70, depth=5,
                            seed=2, name="s")
        )
        lc = lock_random(host, key_width=4, rng=3)
        syn = resynthesize(lc.locked)
        from repro.netlist import GateType

        kinds = {g.gtype for g in syn.gates() if not g.gtype.is_source}
        assert GateType.XOR not in kinds and GateType.XNOR not in kinds
        # and the function is preserved
        from repro.sim import circuits_equal_on_patterns

        assert circuits_equal_on_patterns(lc.locked, syn, n_patterns=128)

    def test_feature_vector_shape(self):
        host = generate_netlist(
            GeneratorConfig(n_inputs=10, n_outputs=6, n_gates=70, depth=5,
                            seed=2, name="s")
        )
        lc = lock_random(host, key_width=4, rng=3)
        syn = resynthesize(lc.locked)
        feats = extract_key_features(syn, lc.key_inputs[0])
        assert feats.shape == (N_FEATURES,)

    def test_training_set_labels_balanced_enough(self):
        x, y = generate_training_set(n_circuits=10, key_width=8, seed=2)
        assert x.shape[1] == N_FEATURES
        assert 0.2 <= y.mean() <= 0.8

    def test_logistic_model_learns_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, N_FEATURES))
        y = (x[:, 0] > 0).astype(float)
        m = LogisticModel.fit(x, y, epochs=600)
        assert (m.predict(x) == y).mean() > 0.9


class TestAttack:
    def test_above_chance_on_rll(self, model):
        accs = []
        for seed in range(6):
            host = generate_netlist(
                GeneratorConfig(n_inputs=12, n_outputs=8, n_gates=100,
                                depth=6, seed=500 + seed, name="v")
            )
            lc = lock_random(host, key_width=8, rng=900 + seed)
            res = sail_attack(resynthesize(lc.locked), lc.key_inputs, model)
            assert res.completed and res.oracle_queries == 0
            accs.append(key_accuracy(res.recovered_key, lc.correct_key))
        assert float(np.mean(accs)) > 0.6  # well above the 0.5 baseline

    def test_collapses_on_wll(self, model):
        """WLL's multi-key control gates have no single-bit polarity for
        SAIL to reconstruct — accuracy falls to chance."""
        accs = []
        for seed in range(6):
            host = generate_netlist(
                GeneratorConfig(n_inputs=12, n_outputs=8, n_gates=100,
                                depth=6, seed=700 + seed, name="w")
            )
            lc = lock_weighted(
                host, WLLConfig(key_width=9, control_width=3, n_key_gates=3),
                rng=900 + seed,
            )
            res = sail_attack(resynthesize(lc.locked), lc.key_inputs, model)
            accs.append(key_accuracy(res.recovered_key, lc.correct_key))
        assert float(np.mean(accs)) < 0.62
