"""End-to-end kill/resume and deadline-degradation acceptance tests.

These prove the two headline robustness claims:

* killing a Table-I campaign after row k (via the ``experiment.row``
  injection site — the moral equivalent of a power cut between rows) and
  rerunning with ``resume=True`` yields byte-identical table output;
* an attack-matrix campaign under an absurd per-attack deadline still
  completes, recording ``timeout`` rows for every oracle-driven attack.
"""

import pytest

from repro.experiments import (
    RunPolicy,
    print_attack_matrix,
    print_table1,
    run_attack_matrix,
    run_table1,
)
from repro.runtime import CheckpointStore, faultinject
from repro.runtime.faultinject import InjectedFault, corrupt_file

pytestmark = pytest.mark.robust

TINY = dict(scale=0.005, circuits=["s38417", "b20", "b21"], n_patterns=256,
            n_keys=2)


@pytest.fixture(autouse=True)
def clean_registry():
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture(scope="module")
def tiny_design():
    """One shared small protected design for the matrix tests."""
    from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
    from repro.locking import WLLConfig
    from repro.orap import OraPConfig, protect

    design = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=8, n_outputs=10, n_gates=60, depth=5, seed=3,
                name="resume60",
            ),
            n_flops=4,
        )
    )
    return protect(
        design,
        orap=OraPConfig(variant="basic"),
        wll=WLLConfig(key_width=6, control_width=3, n_key_gates=2),
        rng=5,
    )


class TestTable1KillResume:
    @pytest.mark.slow
    def test_kill_after_row_2_resume_byte_identical(self, tmp_path, capsys):
        baseline = run_table1(**TINY)
        baseline_text = print_table1(baseline)
        capsys.readouterr()

        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        # power cut before row 3 computes
        faultinject.install("experiment.row", at=3)
        with pytest.raises(InjectedFault):
            run_table1(**TINY, policy=policy)
        faultinject.clear()
        store = CheckpointStore(tmp_path, "table1")
        assert store.keys() == ["b20", "s38417"]  # row 3 never landed

        resumed = run_table1(**TINY, policy=policy)
        resumed_text = print_table1(resumed)
        capsys.readouterr()
        assert resumed_text == baseline_text  # byte-identical output

    @pytest.mark.slow
    def test_resume_survives_corrupted_checkpoint(self, tmp_path, capsys):
        baseline_text = print_table1(run_table1(**TINY))
        capsys.readouterr()

        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        run_table1(**TINY, policy=policy)
        store = CheckpointStore(tmp_path, "table1")
        corrupt_file(store.path_for("b20"))

        resumed_text = print_table1(run_table1(**TINY, policy=policy))
        capsys.readouterr()
        assert resumed_text == baseline_text

    @pytest.mark.slow
    def test_changed_fingerprint_recomputes(self, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        run_table1(**TINY, policy=policy)
        # different n_keys -> different fingerprint -> stale rows ignored
        changed = dict(TINY, n_keys=3)
        rows = run_table1(**changed, policy=policy)
        assert [r.circuit for r in rows] == TINY["circuits"]


class TestAttackMatrixDeadlines:
    def test_tiny_deadline_degrades_to_timeout_rows(self, tiny_design, capsys):
        cells = run_attack_matrix(
            variant="basic",
            max_iterations=16,
            attack_deadline_s=1e-6,
            design=tiny_design,
        )
        print_attack_matrix(cells)
        capsys.readouterr()
        by_key = {(c.chip, c.attack): c for c in cells}
        assert len(cells) == 13  # campaign completed despite the deadline
        # every oracle-driven attack ran out of wall clock...
        for chip in ("conventional", "orap"):
            for atk in ("sat", "appsat", "doubledip", "hillclimb",
                        "sensitization"):
                cell = by_key[(chip, atk)]
                assert cell.status == "timeout", (chip, atk, cell.status)
                assert not cell.completed and not cell.key_correct
        # ...while the structural (non-oracle) attacks are instant
        assert by_key[("orap", "sps")].status == "ok"
        assert by_key[("orap", "removal")].status == "ok"

    def test_matrix_kill_resume_is_consistent(self, tiny_design, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        baseline = run_attack_matrix(
            variant="basic", max_iterations=16, design=tiny_design,
            policy=policy,
        )
        # second run must reuse every row and reproduce it exactly
        resumed = run_attack_matrix(
            variant="basic", max_iterations=16, design=tiny_design,
            policy=policy,
        )
        assert resumed == baseline

    def test_timeout_rows_are_reused_on_resume(self, tiny_design, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        run_attack_matrix(
            variant="basic", max_iterations=16, attack_deadline_s=1e-6,
            design=tiny_design, policy=policy,
        )
        # a timeout verdict is deliberate: resume must not retry it
        faultinject.install("sat.conflict", at=1)  # would crash a re-run
        cells = run_attack_matrix(
            variant="basic", max_iterations=16, attack_deadline_s=1e-6,
            design=tiny_design, policy=policy,
        )
        faultinject.clear()
        assert all(
            c.status == "timeout"
            for c in cells
            if c.attack in ("sat", "appsat", "doubledip")
        )
