"""Tests for deterministic fault injection, and the regression suite
proving no attack lets a budget violation escape as a crash."""

import pytest

from repro.attacks import (
    AppSATConfig,
    CycSATConfig,
    DoubleDIPConfig,
    IdealOracle,
    SATAttackConfig,
    SequentialSATConfig,
    FunctionalOracle,
    appsat_attack,
    cycsat_attack,
    doubledip_attack,
    sat_attack,
    sequential_sat_attack,
)
from repro.atpg import PODEM, FaultSimulator, full_fault_list
from repro.bench import (
    GeneratorConfig,
    SequentialConfig,
    c17,
    generate_netlist,
    generate_sequential,
)
from repro.locking import WLLConfig, lock_cyclic, lock_random
from repro.orap import OraPConfig, protect
from repro.runtime import Budget, faultinject
from repro.runtime.faultinject import InjectedFault
from repro.runtime.outcome import RunStatus, run_guarded
from repro.sat import CNF, Solver
from repro.sim import random_words

pytestmark = pytest.mark.robust


def pigeonhole(n_holes: int) -> CNF:
    """PHP(n+1, n): classically hard UNSAT — a reliable conflict source."""
    cnf = CNF()
    p = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_holes + 1)]
    for row in p:
        cnf.add_clause(row)
    for h in range(n_holes):
        for i in range(n_holes + 1):
            for j in range(i + 1, n_holes + 1):
                cnf.add_clause([-p[i][h], -p[j][h]])
    return cnf


@pytest.fixture(autouse=True)
def clean_registry():
    faultinject.clear()
    yield
    faultinject.clear()


class TestRegistry:
    def test_disabled_by_default(self):
        assert not faultinject.enabled
        faultinject.fire("sat.conflict")  # no plan: harmless
        assert faultinject.hits("sat.conflict") == 0

    def test_fires_on_nth_hit_only(self):
        faultinject.install("site", at=3)
        faultinject.fire("site")
        faultinject.fire("site")
        with pytest.raises(InjectedFault, match="hit 3"):
            faultinject.fire("site")
        faultinject.fire("site")  # one-shot: hit 4 passes
        assert faultinject.hits("site") == 4

    def test_repeat_fires_from_n_onwards(self):
        faultinject.install("site", at=2, repeat=True)
        faultinject.fire("site")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faultinject.fire("site")

    def test_custom_exception_and_instance(self):
        faultinject.install("a", exc=OSError)
        with pytest.raises(OSError):
            faultinject.fire("a")
        boom = ValueError("exact instance")
        faultinject.install("b", exc=boom)
        with pytest.raises(ValueError) as ei:
            faultinject.fire("b")
        assert ei.value is boom

    def test_action_runs_instead_of_raising(self):
        ran = []
        faultinject.install("site", at=2, action=lambda: ran.append(1))
        faultinject.fire("site")
        faultinject.fire("site")
        assert ran == [1]

    def test_context_manager_clears(self):
        with faultinject.injected("site", at=1):
            assert faultinject.enabled
        assert not faultinject.enabled

    def test_invalid_at_rejected(self):
        with pytest.raises(ValueError):
            faultinject.install("site", at=0)


class TestEngineSites:
    def test_nth_conflict_kills_solver(self):
        faultinject.install("sat.conflict", at=5)
        with pytest.raises(InjectedFault):
            Solver(pigeonhole(5)).solve()

    def test_mid_podem_deadline_expiry(self):
        from repro.netlist import GateType, Netlist

        nl = Netlist("red")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("t", GateType.AND, ["a", "b"])
        nl.add_gate("y", GateType.OR, ["a", "t"])
        nl.set_outputs(["y"])
        budget = Budget(wall_s=3600)
        faultinject.install(
            "podem.backtrack", at=1, action=budget.force_expire
        )
        podem = PODEM(nl, max_backtracks=50)

        def run_all():
            for f in full_fault_list(nl):
                podem.generate(f, budget=budget)

        out = run_guarded(run_all, budget=budget)
        assert out.status is RunStatus.TIMEOUT

    def test_faultsim_site(self):
        nl = c17()
        faults = full_fault_list(nl)
        words = {
            n: w for n, w in zip(nl.inputs, random_words(len(nl.inputs), 64))
        }
        faultinject.install("faultsim.fault", at=3)
        with pytest.raises(InjectedFault):
            FaultSimulator(nl).run(faults, words, 64)
        assert faultinject.hits("faultsim.fault") == 3


@pytest.fixture(scope="module")
def comb_locked():
    circuit = generate_netlist(
        GeneratorConfig(
            n_inputs=10, n_outputs=8, n_gates=70, depth=6, seed=11, name="fi"
        )
    )
    return lock_random(circuit, key_width=6, rng=3)


class TestNoAttackLeaksBudgetViolations:
    """Regression suite for the escape audit: under an expired shared
    budget every attack must return a status row, never raise."""

    def _expired(self):
        b = Budget(wall_s=3600)
        b.force_expire()
        return b

    def test_sat_attack(self, comb_locked):
        res = sat_attack(
            comb_locked.locked,
            comb_locked.key_inputs,
            IdealOracle(comb_locked.original),
            SATAttackConfig(budget=self._expired()),
        )
        assert res.status == "timeout" and not res.completed

    def test_appsat(self, comb_locked):
        res = appsat_attack(
            comb_locked.locked,
            comb_locked.key_inputs,
            IdealOracle(comb_locked.original),
            AppSATConfig(budget=self._expired()),
        )
        assert res.status == "timeout" and not res.completed

    def test_doubledip(self, comb_locked):
        res = doubledip_attack(
            comb_locked.locked,
            comb_locked.key_inputs,
            IdealOracle(comb_locked.original),
            DoubleDIPConfig(budget=self._expired()),
        )
        assert res.status == "timeout" and not res.completed

    def test_cycsat(self):
        circuit = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=70, depth=6, seed=4,
                name="cyc",
            )
        )
        cyc = lock_cyclic(circuit, n_feedbacks=4, rng=3)
        res = cycsat_attack(
            cyc,
            IdealOracle(cyc.original),
            CycSATConfig(budget=self._expired()),
        )
        assert res.status == "timeout" and not res.completed

    def test_sequential_sat(self):
        design = generate_sequential(
            SequentialConfig(
                comb=GeneratorConfig(
                    n_inputs=6, n_outputs=6, n_gates=40, depth=4, seed=16,
                    name="seqfi",
                ),
                n_flops=3,
            )
        )
        prot = protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=4, control_width=2, n_key_gates=2),
            rng=5,
        )
        chip = prot.build_chip()
        res = sequential_sat_attack(
            prot.design,
            prot.locked.key_inputs,
            FunctionalOracle(chip),
            SequentialSATConfig(
                depth=3, max_iterations=8, budget=self._expired()
            ),
        )
        assert res.status == "timeout" and not res.completed

    def test_mid_attack_deadline_via_injection(self, comb_locked):
        """Deadline expiring *during* the DIP loop (not before it)."""
        budget = Budget(wall_s=3600)
        faultinject.install(
            "sat.conflict", at=10, action=budget.force_expire
        )
        res = sat_attack(
            comb_locked.locked,
            comb_locked.key_inputs,
            IdealOracle(comb_locked.original),
            SATAttackConfig(budget=budget),
        )
        assert res.status == "timeout" and not res.completed

    def test_without_budget_attacks_still_succeed(self, comb_locked):
        res = sat_attack(
            comb_locked.locked,
            comb_locked.key_inputs,
            IdealOracle(comb_locked.original),
            SATAttackConfig(),
        )
        assert res.status == "ok" and res.completed
