"""Equivalence and regression tests for the compiled op-tape engine.

The scalar :class:`BitSimulator` is the oracle throughout: every engine
path (leveled groups, cyclic singletons, forced nets, multi-key lanes)
must be bit-exact against it, and the batched multi-key HD reduction
must reproduce the looped per-key measurement report for report.
"""

import numpy as np
import pytest

from repro.bench import (
    GeneratorConfig,
    c17,
    generate_netlist,
    mini_alu,
    parity_tree,
    ripple_adder,
)
from repro.bench.registry import PAPER_ORDER, build_paper_circuit, scaled_key_size
from repro.locking import lock_cyclic, lock_random
from repro.netlist import GateType, Netlist
from repro.sim import (
    BitSimulator,
    broadcast_constant,
    clear_engine_cache,
    compile_engine,
    engine_cache_info,
    measure_corruption,
    netlist_fingerprint,
    OpTapeEngine,
    pack_patterns,
    popcount_lanes,
    popcount_words,
    random_words,
    sample_wrong_keys,
    unpack_patterns,
)
from repro.sim.bitsim import _popcount_words_table


def _fixture_netlists():
    return [
        c17(),
        ripple_adder(4),
        mini_alu(4),
        parity_tree(8),
    ] + [
        generate_netlist(
            GeneratorConfig(
                n_inputs=9, n_outputs=7, n_gates=70, depth=6, seed=s, name=f"r{s}"
            )
        )
        for s in range(3)
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("idx", range(7))
    def test_per_net_equal_to_bitsim(self, idx):
        nl = _fixture_netlists()[idx]
        sim = BitSimulator(nl)
        eng = OpTapeEngine(nl)
        words = random_words(len(nl.inputs), 200, seed=11)
        in_words = {n: words[i] for i, n in enumerate(nl.inputs)}
        vs = sim.run(in_words)
        ve = eng.run(in_words)
        for net in nl.nets:
            assert np.array_equal(
                vs[sim.net_index(net)], ve[eng.net_index(net)]
            ), (nl.name, net)

    def test_exhaustive_c17_against_evaluate(self):
        nl = c17()
        eng = OpTapeEngine(nl)
        from repro.sim import exhaustive_words, int_to_assignment

        words = exhaustive_words(5)
        out = eng.run_outputs({n: words[i] for i, n in enumerate(nl.inputs)})
        rows = unpack_patterns(out, 32)
        for v in range(32):
            want = nl.evaluate_outputs(int_to_assignment(v, nl.inputs))
            got = {o: int(rows[v][j]) for j, o in enumerate(nl.outputs)}
            assert got == want

    def test_cyclic_netlist_matches_bitsim(self):
        circuit = generate_netlist(
            GeneratorConfig(
                n_inputs=12, n_outputs=8, n_gates=90, depth=6, seed=4, name="cy"
            )
        )
        cyclic = lock_cyclic(circuit, n_feedbacks=6, rng=3)
        nl = cyclic.locked
        assert nl.allow_cycles
        sim = BitSimulator(nl)
        eng = OpTapeEngine(nl)
        words = random_words(len(nl.inputs), 130, seed=5)
        in_words = {n: words[i] for i, n in enumerate(nl.inputs)}
        vs = sim.run(in_words)
        ve = eng.run(in_words)
        for net in nl.nets:
            assert np.array_equal(
                vs[sim.net_index(net)], ve[eng.net_index(net)]
            ), net

    def test_forced_nets_match_bitsim(self):
        nl = c17()
        sim = BitSimulator(nl)
        eng = OpTapeEngine(nl)
        words = random_words(5, 64, seed=1)
        in_words = {n: words[i] for i, n in enumerate(nl.inputs)}
        forced = {"G10": broadcast_constant(1, 1), "G1": broadcast_constant(0, 1)}
        a = sim.run_outputs(in_words, forced=forced)
        b = eng.run_outputs(in_words, forced=forced)
        assert np.array_equal(a, b)

    def test_array_input_form(self):
        nl = ripple_adder(3)
        eng = OpTapeEngine(nl)
        words = random_words(len(nl.inputs), 100, seed=2)
        out1 = eng.run_outputs(words)
        out2 = eng.run_outputs({n: words[i] for i, n in enumerate(nl.inputs)})
        assert np.array_equal(out1, out2)

    def test_input_validation(self):
        eng = OpTapeEngine(c17())
        with pytest.raises(ValueError):
            eng.run(np.zeros((3, 1), dtype=np.uint64))
        with pytest.raises(ValueError):
            eng.run({"G1": np.zeros(1, dtype=np.uint64)})


class TestRunKeyed:
    def test_matches_per_key_runs(self):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=6, n_gates=60, depth=5, seed=7, name="k"
            )
        )
        lc = lock_random(nl, key_width=8, rng=1)
        locked = lc.locked
        eng = OpTapeEngine(locked)
        key_inputs = list(lc.key_inputs)
        data_inputs = [i for i in locked.inputs if i not in set(key_inputs)]
        data_words = random_words(len(data_inputs), 150, seed=3)
        keys = np.array(
            [[(k >> b) & 1 for b in range(8)] for k in (0, 3, 255, 129)],
            dtype=np.uint8,
        )
        batched = eng.run_keyed(data_inputs, data_words, key_inputs, keys)
        nw = data_words.shape[1]
        for lane, vec in enumerate(keys):
            in_words = {n: data_words[i] for i, n in enumerate(data_inputs)}
            for k, bit in zip(key_inputs, vec):
                in_words[k] = broadcast_constant(int(bit), nw)
            single = eng.run_outputs(in_words)
            assert np.array_equal(batched[lane], single), lane

    def test_shape_validation(self):
        nl = c17()
        eng = OpTapeEngine(nl)
        words = random_words(4, 64, seed=0)
        with pytest.raises(ValueError):
            eng.run_keyed(
                list(nl.inputs[:4]), words, ["nokey"], np.zeros((1, 1), np.uint8)
            )
        with pytest.raises(ValueError):
            # one data input missing
            eng.run_keyed(
                list(nl.inputs[:3]),
                words[:3],
                [nl.inputs[4]],
                np.zeros((1, 1), np.uint8),
            )


class TestBatchedCorruption:
    @pytest.mark.parametrize("cname", PAPER_ORDER[:4])
    def test_matches_scalar_backend_on_corpus(self, cname):
        nl = build_paper_circuit(cname, scale=0.02, seed=3)
        k = scaled_key_size(cname, 0.02)
        lc = lock_random(nl, key_width=k, rng=5)
        kwargs = dict(n_patterns=500, n_keys=7, seed=2)
        r_scalar = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key,
            backend="scalar", **kwargs,
        )
        r_optape = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key,
            backend="batched", **kwargs,
        )
        assert r_scalar == r_optape

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_backend_on_random_netlists(self, seed):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=8, n_outputs=6, n_gates=55, depth=5, seed=seed, name="m"
            )
        )
        lc = lock_random(nl, key_width=6, rng=seed)
        kwargs = dict(n_patterns=321, n_keys=5, seed=seed)
        r_scalar = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key,
            backend="scalar", **kwargs,
        )
        r_optape = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key,
            backend="batched", **kwargs,
        )
        assert r_scalar == r_optape

    def test_lane_chunking_matches_unchunked(self):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=8, n_outputs=6, n_gates=55, depth=5, seed=9, name="c"
            )
        )
        lc = lock_random(nl, key_width=6, rng=9)
        kwargs = dict(n_patterns=200, n_keys=11, seed=1)
        wide = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key, **kwargs
        )
        # 1-byte budget forces one lane per chunk
        narrow = measure_corruption(
            lc.locked, list(lc.key_inputs), lc.correct_key,
            max_matrix_bytes=1, **kwargs,
        )
        assert wide == narrow

    @pytest.mark.parametrize("n_patterns", [65, 70, 127])
    def test_tail_mask_applied_per_key_lane(self, n_patterns):
        # y = a XOR k: any wrong key flips every output bit, so HD must be
        # exactly 100% — with the tail mask applied to only one lane, the
        # other lanes would count padding bits and overshoot
        nl = Netlist("l")
        nl.add_input("a")
        nl.add_input("k")
        nl.add_gate("y", GateType.XOR, ["a", "k"])
        nl.set_outputs(["y"])
        rep = measure_corruption(
            nl, ["k"], {"k": 0}, n_patterns=n_patterns, n_keys=4
        )
        assert rep.per_key_hd == (100.0,) * 4
        assert rep.corrupted_pattern_fraction == 1.0

    def test_unknown_backend_rejected(self):
        nl = c17()
        with pytest.raises(ValueError):
            measure_corruption(nl, ["G1"], {"G1": 0}, backend="cuda")


class TestSampleWrongKeys:
    def test_deterministic_and_never_correct(self):
        names = [f"k{i}" for i in range(6)]
        correct = {n: 1 for n in names}
        a = sample_wrong_keys(names, correct, 50, seed=3)
        b = sample_wrong_keys(names, correct, 50, seed=3)
        assert a == b
        assert (1,) * 6 not in a

    def test_empty_key_list_rejected(self):
        with pytest.raises(ValueError):
            sample_wrong_keys([], {}, 1)


class TestCompileCache:
    def test_cache_hit_returns_same_engine(self):
        clear_engine_cache()
        nl = c17()
        a = compile_engine(nl)
        b = compile_engine(nl.copy())
        assert a is b
        hits = engine_cache_info()
        assert hits["size"] == 1

    def test_fingerprint_ignores_name_but_not_structure(self):
        nl = c17()
        renamed = nl.copy()
        renamed.name = "other"
        assert netlist_fingerprint(nl) == netlist_fingerprint(renamed)
        changed = nl.copy()
        changed.add_gate("extra", GateType.NOT, [nl.outputs[0]])
        assert netlist_fingerprint(nl) != netlist_fingerprint(changed)

    def test_cache_bypass(self):
        clear_engine_cache()
        nl = c17()
        a = compile_engine(nl, cache=False)
        b = compile_engine(nl, cache=False)
        assert a is not b
        assert engine_cache_info()["size"] == 0


class TestPopcountParity:
    def test_table_matches_fast_path(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=(7, 13), dtype=np.uint64)
        assert popcount_words(words) == _popcount_words_table(words)

    def test_lanes_both_paths(self, monkeypatch):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**64, size=(5, 4, 3), dtype=np.uint64)
        fast = popcount_lanes(words)
        monkeypatch.setattr("repro.sim.bitsim._HAS_BITWISE_COUNT", False)
        slow = popcount_lanes(words)
        assert np.array_equal(fast, slow)
        want = [popcount_words(words[i]) for i in range(5)]
        assert list(fast) == want

    def test_words_fallback_path(self, monkeypatch):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2**64, size=64, dtype=np.uint64)
        fast = popcount_words(words)
        monkeypatch.setattr("repro.sim.bitsim._HAS_BITWISE_COUNT", False)
        assert popcount_words(words) == fast


class TestVectorizedPacking:
    def test_roundtrip_large_random(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(1000, 17), dtype=np.uint8)
        words = pack_patterns(bits)
        assert words.shape == (17, 16)
        assert np.array_equal(unpack_patterns(words, 1000), bits)

    def test_pack_matches_manual_reference(self):
        bits = np.zeros((70, 2), dtype=np.uint8)
        bits[0, 0] = 1
        bits[63, 0] = 1
        bits[64, 1] = 1
        bits[69, 0] = 1
        words = pack_patterns(bits)
        assert words[0, 0] == np.uint64((1 << 0) | (1 << 63))
        assert words[0, 1] == np.uint64(1 << 5)
        assert words[1, 1] == np.uint64(1 << 0)
