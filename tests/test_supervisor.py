"""Tests for the supervised worker fleet: crash/hang containment,
poison-row quarantine, deterministic re-dispatch, graceful drain, and
the ``REPRO_CHAOS`` process-level chaos plans that drive them.

Row callables live at module level so they reach workers regardless of
start method; chaos is injected the way production does it — through the
environment — so worker bootstrap re-arming is exercised too.
"""

import multiprocessing
import time

import pytest

from repro.experiments import ExperimentRunner, RowTask, RunPolicy
from repro.runtime import (
    CampaignInterrupted,
    PoolTask,
    RunOutcome,
    RunStatus,
    SupervisedPool,
    faultinject,
)
from repro.runtime.faultinject import CHAOS_ENV, ChaosSpecError

pytestmark = pytest.mark.robust


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    """Chaos plans must never leak between tests (or into workers of a
    later test via fork-inherited registry state)."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    faultinject.clear()
    yield
    faultinject.clear()


def _ok_row(row_arg, key, payload, attempt):
    return RunOutcome(
        RunStatus.OK, value={"key": key, "payload": payload, "attempt": attempt}
    )


def _sleep_row(row_arg, key, payload, attempt):
    time.sleep(payload)
    return RunOutcome(RunStatus.OK, value=key)


def _square(x, budget=None):
    return {"value": x * x}


def _tasks(n=4):
    return [PoolTask(index=i, key=f"r{i}", payload=i) for i in range(n)]


def _no_supervised_children():
    return not any(
        p.name.startswith("repro-supervised")
        for p in multiprocessing.active_children()
    )


class TestPoolBasics:
    def test_runs_every_task(self):
        pool = SupervisedPool(jobs=2, row_fn=_ok_row)
        results = pool.run(_tasks(5))
        assert sorted(results) == list(range(5))
        assert all(results[i].value["key"] == f"r{i}" for i in range(5))
        assert all(results[i].value["attempt"] == 0 for i in range(5))
        assert pool.crashes == 0 and pool.hangs == 0
        assert pool.quarantined == {} and pool.restarts == 0
        assert _no_supervised_children()

    def test_on_result_fires_once_per_row(self):
        seen = []
        pool = SupervisedPool(jobs=2, row_fn=_ok_row)
        pool.run(_tasks(4), on_result=lambda i, o: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_empty_task_list(self):
        assert SupervisedPool(jobs=2, row_fn=_ok_row).run([]) == {}

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SupervisedPool(jobs=0, row_fn=_ok_row)


class TestCrashContainment:
    def test_killed_worker_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill:r1@0")
        pool = SupervisedPool(jobs=2, row_fn=_ok_row, worker_retries=1)
        results = pool.run(_tasks(3))
        assert all(results[i].ok for i in range(3))
        # the re-dispatched row ran as process-level attempt 1
        assert results[1].value["attempt"] == 1
        assert pool.crashes == 1 and pool.requeues == 1
        assert pool.restarts >= 1 and pool.quarantined == {}
        assert _no_supervised_children()

    def test_poison_row_quarantined_with_signal_history(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill:r0@*")
        pool = SupervisedPool(jobs=2, row_fn=_ok_row, worker_retries=1)
        results = pool.run(_tasks(3))
        bad = results[0]
        assert bad.status is RunStatus.ERROR
        assert bad.error_type == "RowQuarantined"
        assert "quarantined after 2 process-level attempts" in bad.error
        history = bad.diagnostics["quarantine"]["attempts"]
        assert len(history) == 2 and bad.attempts == 2
        assert all(f["kind"] == "crash" and f["signal"] == 9 for f in history)
        assert {f["worker"] for f in history}  # worker names recorded
        # the fleet and the other rows survived the poison row
        assert results[1].ok and results[2].ok
        assert pool.quarantined.keys() == {"r0"}
        assert _no_supervised_children()

    def test_exit_chaos_records_exit_code(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "exit:r0@*")
        pool = SupervisedPool(jobs=1, row_fn=_ok_row, worker_retries=0)
        results = pool.run(_tasks(1))
        (failure,) = results[0].diagnostics["quarantine"]["attempts"]
        assert failure["exitcode"] == 42 and failure["signal"] is None
        assert _no_supervised_children()

    def test_backoff_gates_the_redispatch(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill:r0@0")
        pool = SupervisedPool(
            jobs=1, row_fn=_ok_row, worker_retries=1, backoff_s=0.4
        )
        start = time.monotonic()
        results = pool.run(_tasks(1))
        assert results[0].ok
        # run_with_retry's schedule: attempt 1 waits backoff_s * 2**0
        assert time.monotonic() - start >= 0.4


class TestHangContainment:
    def test_stalled_row_caught_by_watchdog(self, monkeypatch):
        # stall = live heartbeat, row never returns: only the per-row
        # deadline watchdog can catch it
        monkeypatch.setenv(CHAOS_ENV, "stall:r0@0")
        pool = SupervisedPool(
            jobs=2,
            row_fn=_ok_row,
            row_allowance_s=0.2,
            hang_grace_s=0.1,
            heartbeat_interval_s=0.05,
            worker_retries=1,
        )
        results = pool.run(_tasks(2))
        assert results[0].ok and results[0].value["attempt"] == 1
        assert results[1].ok
        assert pool.hangs == 1 and pool.quarantined == {}
        assert _no_supervised_children()

    def test_dead_heartbeat_caught_without_row_deadline(self, monkeypatch):
        # hang = heartbeat thread dead too; no row deadline is set, so
        # only the stale-heartbeat monitor can see this worker
        monkeypatch.setenv(CHAOS_ENV, "hang:r0@*")
        pool = SupervisedPool(
            jobs=1,
            row_fn=_ok_row,
            worker_retries=0,
            heartbeat_interval_s=0.05,
            heartbeat_stale_s=0.3,
        )
        results = pool.run(_tasks(1))
        (failure,) = results[0].diagnostics["quarantine"]["attempts"]
        assert failure["kind"] == "stalled-heartbeat"
        assert pool.hangs == 1
        assert _no_supervised_children()


class TestGracefulDrain:
    def test_request_stop_raises_resumable_interrupt(self):
        tasks = [PoolTask(index=i, key=f"r{i}", payload=0.4) for i in range(3)]
        pool = SupervisedPool(jobs=1, row_fn=_sleep_row, experiment="drain")

        def stop_after_first(index, outcome):
            pool.request_stop()

        with pytest.raises(CampaignInterrupted) as exc_info:
            pool.run(tasks, on_result=stop_after_first)
        err = exc_info.value
        assert err.total == 3 and 1 <= err.done < 3
        assert err.experiment == "drain"
        assert "resumable at row" in str(err) and "--resume" in str(err)
        assert _no_supervised_children()


class TestQuarantineResume:
    """Quarantine verdicts survive a checkpoint/resume round-trip."""

    def _tasks(self):
        return [
            RowTask(key=k, compute=_square, args=(i,))
            for i, k in enumerate(["good0", "bad", "good1"])
        ]

    def test_quarantine_checkpointed_then_reused(self, tmp_path, monkeypatch):
        policy = RunPolicy(
            checkpoint_dir=tmp_path, resume=True, jobs=2, worker_retries=0
        )
        monkeypatch.setenv(CHAOS_ENV, "kill:bad@*")
        first = ExperimentRunner("q", policy, fingerprint={"v": 1})
        outcomes = first.run_rows(self._tasks())
        assert outcomes[1].error_type == "RowQuarantined"
        assert outcomes[0].ok and outcomes[2].ok

        # chaos off: a resumed campaign must still *skip* the poison row
        monkeypatch.delenv(CHAOS_ENV)
        faultinject.clear()
        second = ExperimentRunner("q", policy, fingerprint={"v": 1})
        resumed = second.run_rows(self._tasks())
        assert second.rows_reused == 3 and second.rows_computed == 0
        assert resumed[1].status is RunStatus.ERROR
        assert resumed[1].error_type == "RowQuarantined"
        assert resumed[1].diagnostics["quarantined"]
        history = resumed[1].diagnostics["quarantine"]["attempts"]
        assert history and history[0]["signal"] == 9

        # ... unless the operator explicitly asks for another try
        retry_policy = RunPolicy(
            checkpoint_dir=tmp_path, resume=True, jobs=2,
            worker_retries=0, retry_quarantined=True,
        )
        third = ExperimentRunner("q", retry_policy, fingerprint={"v": 1})
        retried = third.run_rows(self._tasks())
        assert third.rows_reused == 2 and third.rows_computed == 1
        assert retried[1].ok and retried[1].value == {"value": 1}


class TestChaosSpec:
    def test_row_entries_match_key_and_attempt(self):
        faultinject.install_chaos("kill:r1@*;hang:r2;stall:*@1")
        assert faultinject.chaos_row_action("r1", 0) == "kill"
        assert faultinject.chaos_row_action("r1", 7) == "kill"
        assert faultinject.chaos_row_action("r2", 0) == "hang"
        assert faultinject.chaos_row_action("r2", 2) is None  # @0 default
        assert faultinject.chaos_row_action("anything", 1) == "stall"
        assert faultinject.chaos_row_action("anything", 0) is None

    def test_site_entries_install_plans(self):
        n = faultinject.install_chaos("enospc:cache.put@2;raise:checkpoint.save")
        assert n == 2 and faultinject.enabled
        faultinject.fire("cache.put")  # hit 1: below threshold
        with pytest.raises(OSError, match="no space left"):
            faultinject.fire("cache.put")
        with pytest.raises(faultinject.InjectedFault):
            faultinject.fire("checkpoint.save")

    def test_malformed_specs_rejected(self):
        with pytest.raises(ChaosSpecError, match="expected action:target"):
            faultinject.install_chaos("bogus")
        with pytest.raises(ChaosSpecError, match="unknown action"):
            faultinject.install_chaos("frob:r1")

    def test_install_from_env_is_idempotent(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "kill:r0")
        assert faultinject.install_from_env() == 1
        assert faultinject.install_from_env() == 0  # second parse is a no-op
        faultinject.clear()  # re-arms eligibility
        assert faultinject.install_from_env() == 1
