"""Corpus manager: manifest catalog, content-addressed store, loader memo.

Everything here runs fully offline against the vendored fixtures — the
same guarantee the corpus-smoke CI lane enforces.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus.loader import (
    clear_memo,
    corpus_digests,
    load_circuit,
    load_corpus_circuit,
    preflight_report,
)
from repro.corpus.manifest import (
    FIXTURES_DIR,
    OFFLINE_FAMILIES,
    blake2b_hex,
    entries_for,
    find_entry,
    manifest_checksum,
)
from repro.corpus.store import CorpusError, CorpusStore


class TestManifest:
    def test_offline_families_are_all_vendored(self):
        for entry in entries_for(offline=True):
            assert entry.vendored is not None
            assert (FIXTURES_DIR / entry.vendored).exists()

    def test_vendored_checksums_match_fixture_bytes(self):
        for entry in entries_for(offline=True):
            data = (FIXTURES_DIR / entry.vendored).read_bytes()
            assert entry.blake2b == blake2b_hex(data), entry.name

    def test_unknown_family_raises_with_known_keys(self):
        with pytest.raises(KeyError, match="iscas85-mini"):
            entries_for(["no-such-family"])

    def test_offline_rejects_remote_only_family(self):
        with pytest.raises(KeyError, match="no vendored entries"):
            entries_for(["itc99"], offline=True)

    def test_find_entry(self):
        assert find_entry("s27").family == "iscas89-mini"
        with pytest.raises(KeyError):
            find_entry("nope")

    def test_names_unique_across_catalog_formats(self):
        # the store index is keyed by name: a name must never map to two
        # different formats (iscas89 s27 appears twice, same circuit)
        fmt_of: dict[str, str] = {}
        for entry in entries_for():
            assert fmt_of.setdefault(entry.name, entry.fmt) == entry.fmt

    def test_manifest_checksum_is_stable_hex(self):
        first = manifest_checksum()
        assert first == manifest_checksum()
        int(first, 16)
        assert len(first) == 32

    def test_mini_families_are_the_offline_tier(self):
        assert set(OFFLINE_FAMILIES) == {
            f for f in OFFLINE_FAMILIES if f.endswith("-mini")
        }
        assert "iscas85-mini" in OFFLINE_FAMILIES


class TestStore:
    def test_offline_fetch_materializes_vendored(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        results = store.fetch(offline=True)
        assert all(a == "vendored" for _, a in results)
        again = store.fetch(offline=True)
        assert all(a == "cached" for _, a in again)

    def test_remote_entry_errors_offline(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        results = dict(store.fetch(["iscas85-mini", "itc99"], offline=False))
        # vendored ones succeed; remote downloads fail in the sandbox
        assert results["c17"] == "vendored"

    def test_paranoid_read_heals_vendored_corruption(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.fetch(["iscas89-mini"], offline=True)
        path = store.path_of("s27")
        good = path.read_bytes()
        path.write_text("MANGLED\n")
        healed = store.path_of("s27")
        assert healed.read_bytes() == good

    def test_verify_reports_and_heals(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.fetch(["iscas85-mini"], offline=True)
        store.path_of("c17").write_text("junk")
        problems = store.verify()
        assert any("c17" in p and "healed" in p for p in problems)
        assert store.verify() == []

    def test_unknown_circuit_raises_corpus_error(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        with pytest.raises(CorpusError):
            store.path_of("no-such-circuit")

    def test_unfetched_vendored_circuit_self_heals(self, tmp_path):
        # path_of on an empty store still serves vendored entries
        store = CorpusStore(tmp_path / "corpus")
        assert store.path_of("c17").exists()

    def test_version_mismatch_wipes_store(self, tmp_path):
        root = tmp_path / "corpus"
        store = CorpusStore(root)
        store.fetch(offline=True)
        (root / "VERSION").write_text("corpus/999\n")
        reopened = CorpusStore(root)
        assert reopened.list_entries() == []

    def test_stored_file_carries_format_suffix(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.fetch(offline=True)
        assert store.path_of("c17").suffix == ".bench"
        assert store.path_of("c17v").suffix == ".v"

    def test_stats_include_manifest_checksum(self, tmp_path):
        store = CorpusStore(tmp_path / "corpus")
        store.fetch(["iscas85-mini"], offline=True)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["manifest_checksum"] == manifest_checksum()


class TestLoader:
    def test_parse_once_memo(self, tmp_path):
        clear_memo()
        p = tmp_path / "m.bench"
        p.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        first = load_circuit(p)
        second = load_circuit(p)
        assert second is first
        # content change re-parses
        p.write_text("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n")
        third = load_circuit(p)
        assert third is not first

    def test_load_corpus_circuit_and_digests(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
        clear_memo()
        handle = load_corpus_circuit("s27")
        assert handle.ok
        assert handle.stats["flops"] == 3
        digests = corpus_digests(["s27", "c17"])
        assert digests["s27"] == handle.digest

    def test_preflight_report_flows_parse_errors_as_io001(self, tmp_path):
        clear_memo()
        p = tmp_path / "bad.bench"
        p.write_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        handle = load_circuit(p)
        report = preflight_report(handle)
        assert any(d.rule_id == "IO001" for d in report.diagnostics)

    def test_preflight_report_runs_netlist_rules_when_clean(self, tmp_path):
        clear_memo()
        p = tmp_path / "ok.bench"
        p.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
        handle = load_circuit(p)
        report = preflight_report(handle)
        assert not any(d.rule_id == "IO001" for d in report.diagnostics)

    def test_require_circuit_raises_structured_error(self, tmp_path):
        clear_memo()
        p = tmp_path / "bad.bench"
        p.write_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        with pytest.raises(ValueError, match="FROB"):
            load_circuit(p).require_circuit()


class TestRegistryBridge:
    def test_corpus_circuit_names(self):
        from repro.bench import corpus_circuit_names

        assert corpus_circuit_names("iscas85-mini") == ["c17", "c432_mini"]
        with pytest.raises(KeyError):
            corpus_circuit_names("nope")

    def test_build_corpus_circuit_full_scan(self, tmp_path, monkeypatch):
        from repro.bench import build_corpus_circuit, corpus_key_size

        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
        clear_memo()
        core = build_corpus_circuit("s27")
        # full-scan view: 4 PIs + 3 flop Q pseudo-PIs
        assert len(core.inputs) == 7
        assert corpus_key_size(core) == 8


class TestCampaignParams:
    def test_table_campaigns_accept_corpus(self):
        from repro.service.jobs import CAMPAIGNS

        for name in ("table1", "table2", "attacks"):
            params = CAMPAIGNS[name].normalize_params({"corpus": None})
            assert params["corpus"] is None

    def test_rows_total_consults_manifest(self):
        from repro.service.jobs import CAMPAIGNS

        spec = CAMPAIGNS["table1"]
        params = spec.normalize_params({"corpus": "iscas85-mini"})
        assert spec.rows_total(params) == 2


class TestCorpusCli:
    def test_fetch_list_verify_stats(self, tmp_path, capsys):
        from repro.corpus.cli import run_corpus_cli

        root = str(tmp_path / "corpus")
        assert run_corpus_cli("fetch", offline=True, corpus_dir=root) == 0
        out = capsys.readouterr().out
        assert "vendored" in out
        assert run_corpus_cli("list", corpus_dir=root) == 0
        assert run_corpus_cli("verify", corpus_dir=root) == 0
        assert run_corpus_cli("stats", corpus_dir=root) == 0

    def test_stats_json_roundtrips(self, tmp_path, capsys):
        from repro.corpus.cli import run_corpus_cli

        root = str(tmp_path / "corpus")
        run_corpus_cli("fetch", offline=True, corpus_dir=root)
        capsys.readouterr()
        assert run_corpus_cli("stats", corpus_dir=root, fmt="json") == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == len(entries_for(offline=True))

    def test_unknown_family_is_a_clean_error(self, tmp_path, capsys):
        from repro.corpus.cli import run_corpus_cli

        code = run_corpus_cli(
            "fetch", families=["bogus"], offline=True,
            corpus_dir=str(tmp_path / "corpus"),
        )
        assert code == 2
        assert "unknown corpus family" in capsys.readouterr().err
