"""Tests for the FALL attack (oracle-less, cube-stripping specific)."""

import pytest

from repro.attacks import (
    fall_attack,
    find_restore_units,
    key_is_correct,
    recover_stripped_cube,
)
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import WLLConfig, lock_random, lock_ttlock, lock_weighted


@pytest.fixture(scope="module")
def circuit():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=12, n_outputs=8, n_gates=90, depth=6, seed=3, name="f"
        )
    )


class TestStages:
    def test_restore_unit_found(self, circuit):
        tt = lock_ttlock(circuit, key_width=8, rng=5)
        matches = find_restore_units(tt.locked, tt.key_inputs)
        assert matches
        best = matches[0]
        assert len(best.pairs) == 8
        assert set(best.pairs) == set(tt.key_inputs)
        assert set(best.pairs.values()) == set(tt.extra["compared_inputs"])

    def test_cube_recovered_matches_secret(self, circuit):
        tt = lock_ttlock(circuit, key_width=8, rng=5)
        cube = recover_stripped_cube(tt.locked, tt.extra["compared_inputs"])
        assert cube is not None
        secret = dict(zip(tt.extra["compared_inputs"], tt.extra["secret_cube"]))
        assert cube == secret

    def test_no_restore_unit_in_wll(self, circuit):
        wll = lock_weighted(
            circuit, WLLConfig(key_width=9, control_width=3, n_key_gates=4),
            rng=5,
        )
        assert find_restore_units(wll.locked, wll.key_inputs) == []


class TestEndToEnd:
    def test_breaks_ttlock_without_oracle(self, circuit):
        tt = lock_ttlock(circuit, key_width=8, rng=5)
        res = fall_attack(tt.locked, tt.key_inputs)
        assert res.completed
        assert res.oracle_queries == 0
        assert key_is_correct(tt, res.recovered_key)
        assert res.notes["confirmed"]

    @pytest.mark.parametrize("seed", [1, 7, 11])
    def test_breaks_ttlock_across_seeds(self, circuit, seed):
        tt = lock_ttlock(circuit, key_width=6, rng=seed)
        res = fall_attack(tt.locked, tt.key_inputs)
        assert res.completed
        assert key_is_correct(tt, res.recovered_key)

    def test_not_applicable_to_wll(self, circuit):
        """The paper: FALL 'can be applied only to locking methods that
        use cube stripping' — OraP's companion WLL has no such structure."""
        wll = lock_weighted(
            circuit, WLLConfig(key_width=9, control_width=3, n_key_gates=4),
            rng=5,
        )
        res = fall_attack(wll.locked, wll.key_inputs)
        assert not res.completed
        assert "not applicable" in res.notes["reason"]

    def test_not_applicable_to_rll(self, circuit):
        rll = lock_random(circuit, key_width=6, rng=5)
        res = fall_attack(rll.locked, rll.key_inputs)
        assert not res.completed
