"""Tests for OraP design assembly (protect, response flops, planning)."""

import pytest

from repro.bench import (
    GeneratorConfig,
    SequentialConfig,
    c17,
    generate_sequential,
    mini_alu,
)
from repro.locking import WLLConfig, lock_random, lock_weighted
from repro.orap import (
    OraPConfig,
    closed_fanin_cone,
    protect,
    select_response_flops,
    sequential_key_taint,
    simulate_response_stream,
    wrap_combinational,
)


@pytest.fixture(scope="module")
def design():
    return generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=120, depth=6, seed=6, name="sd"
            ),
            n_flops=10,
        )
    )


class TestProtectBasic:
    def test_unlock_roundtrip(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=1,
        )
        chip = d.chip
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()

    def test_accepts_premade_locked_circuit(self, design):
        locked = lock_weighted(
            design.core,
            WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=2,
        )
        d = protect(design, locking=locked, orap=OraPConfig(variant="basic"), rng=3)
        chip = d.chip
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()

    def test_accepts_locking_callable(self, design):
        def locker(core, exclude_nets, rng):
            return lock_random(core, key_width=8, rng=rng)

        d = protect(design, locking=locker, orap=OraPConfig(variant="basic"), rng=4)
        chip = d.chip
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()

    def test_premade_locked_rejected_for_modified(self, design):
        locked = lock_weighted(
            design.core,
            WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=2,
        )
        with pytest.raises(ValueError):
            protect(design, locking=locked, orap=OraPConfig(variant="modified"))

    def test_unknown_variant_rejected(self, design):
        with pytest.raises(ValueError):
            protect(design, orap=OraPConfig(variant="quantum"))

    def test_overhead_gates(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=1,
        )
        o = d.overhead_gates()
        assert o["pulse_generators"] == 10 * 4
        assert o["reseed_xors"] == 10

    def test_deterministic_given_seed(self, design):
        d1 = protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=11,
        )
        d2 = protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=11,
        )
        assert d1.key_sequence.words == d2.key_sequence.words
        assert d1.locked.key_vector() == d2.locked.key_vector()


class TestProtectModified:
    def test_unlock_roundtrip(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="modified"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=5,
        )
        chip = d.chip
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()
        assert len(d.response_points) > 0
        assert len(d.response_flops) == len(d.response_points)

    def test_response_flops_are_key_free(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="modified"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=5,
        )
        taint = sequential_key_taint(d.design, d.locked.key_inputs)
        for flop in d.response_flops:
            assert d.design.flop(flop).d not in taint

    def test_response_stream_is_key_independent(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="modified"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=5,
        )
        n = d.key_sequence.schedule.n_cycles
        s0 = simulate_response_stream(
            d.design, d.locked, d.response_flops, n, d.unlock_pi_values
        )
        # recompute with the key pinned to the correct value instead of 0
        state = d.design.reset_state()
        stream = []
        base = dict(d.unlock_pi_values)
        base.update(d.locked.correct_key)
        for _ in range(n):
            stream.append([state[f] for f in d.response_flops])
            asg = dict(base)
            for ff in d.design.flops:
                asg[ff.q] = state[ff.name]
            values = d.design.core.evaluate(asg)
            state = {ff.name: values[ff.d] for ff in d.design.flops}
        assert stream == s0

    def test_memory_and_response_points_partition(self, design):
        d = protect(
            design,
            orap=OraPConfig(variant="modified"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=5,
        )
        mem = set(d.memory_points)
        resp = set(d.response_points)
        assert not (mem & resp)
        assert mem | resp == set(d.lfsr_config.reseed_points)


class TestHelpers:
    def test_sequential_key_taint_propagates_through_flops(self, design):
        # taint from a flop's D-source should reach its Q fanout next cycle
        ff = design.flops[0]
        src_gate = design.core.gate(ff.d)
        taint = sequential_key_taint(design, [ff.d])
        assert ff.q in taint or design.core.fanout_map()[ff.q] == []

    def test_closed_fanin_cone_is_closed(self, design):
        cone = closed_fanin_cone(design, [design.flops[0].name])
        q_to_d = {ff.q: ff.d for ff in design.flops}
        for net in list(cone):
            for f in design.core.gate(net).fanin:
                assert f in cone
            if net in q_to_d:
                assert q_to_d[net] in cone

    def test_select_response_flops_count(self, design):
        flops, cone = select_response_flops(design, 3)
        assert len(flops) == 3
        assert cone == closed_fanin_cone(design, flops)

    def test_select_too_many_raises(self, design):
        from repro.orap.schedule import PlanningError

        with pytest.raises(PlanningError):
            select_response_flops(design, 100)


class TestWrapCombinational:
    def test_wrap_roundtrip(self):
        nl = mini_alu(4)
        seq = wrap_combinational(nl, n_flops=3)
        assert seq.state_width == 3
        assert len(seq.primary_inputs) == len(nl.inputs) - 3
        assert len(seq.primary_outputs) == len(nl.outputs) - 3
        seq.build_scan_chains(1)
        seq.validate()

    def test_wrap_validation(self):
        with pytest.raises(ValueError):
            wrap_combinational(c17(), n_flops=0)
        with pytest.raises(ValueError):
            wrap_combinational(c17(), n_flops=5)

    def test_wrapped_design_protectable(self):
        nl = mini_alu(4)
        seq = wrap_combinational(nl, n_flops=3)
        d = protect(
            seq,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=6, control_width=3, n_key_gates=3),
            rng=2,
        )
        chip = d.chip
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()
