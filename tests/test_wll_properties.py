"""Property-based tests on the core locking/OraP invariants (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import WLLConfig, lock_random, lock_weighted
from repro.orap import LFSR, LFSRConfig, ReseedSchedule, final_state, plan_key_sequence
from repro.sim import functional_match_fraction


@st.composite
def small_circuit(draw):
    seed = draw(st.integers(0, 10_000))
    n_in = draw(st.integers(6, 12))
    n_out = draw(st.integers(4, 8))
    n_gates = draw(st.integers(30, 90))
    return generate_netlist(
        GeneratorConfig(
            n_inputs=n_in, n_outputs=n_out, n_gates=n_gates, depth=6,
            seed=seed, name=f"prop{seed}",
        )
    )


class TestLockingInvariants:
    @given(small_circuit(), st.integers(0, 1000))
    @settings(max_examples=10)
    def test_rll_correct_key_is_identity(self, nl, seed):
        lc = lock_random(nl, key_width=4, rng=seed)
        assert (
            functional_match_fraction(
                lc.original, lc.locked, n_patterns=256,
                inputs_b=lc.correct_key,
            )
            == 1.0
        )

    @given(small_circuit(), st.integers(0, 1000))
    @settings(max_examples=8)
    def test_wll_correct_key_is_identity(self, nl, seed):
        lc = lock_weighted(
            nl, WLLConfig(key_width=6, control_width=3, n_key_gates=2),
            rng=seed,
        )
        assert (
            functional_match_fraction(
                lc.original, lc.locked, n_patterns=256,
                inputs_b=lc.correct_key,
            )
            == 1.0
        )

    @given(small_circuit(), st.integers(0, 1000))
    @settings(max_examples=8)
    def test_locking_preserves_interface(self, nl, seed):
        lc = lock_random(nl, key_width=4, rng=seed)
        assert lc.data_inputs == nl.inputs
        assert lc.locked.outputs == nl.outputs


class TestLFSRInvariants:
    @given(st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_planning_roundtrip(self, seed):
        rng = random.Random(seed)
        n = rng.randint(8, 40)
        cfg = LFSRConfig(size=n)
        sched = ReseedSchedule.randomized(
            n_seeds=rng.randint(1, 5), rng=seed
        )
        target = [rng.randrange(2) for _ in range(n)]
        seq = plan_key_sequence(cfg, sched, target, rng=seed)
        assert final_state(cfg, seq) == target

    @given(st.integers(0, 100_000))
    @settings(max_examples=20)
    def test_lfsr_linearity(self, seed):
        """step(a XOR b) from 0 == step(a) XOR step(b) (GF(2) linearity)."""
        rng = random.Random(seed)
        n = rng.randint(4, 24)
        cfg = LFSRConfig(size=n)
        sa = [rng.randrange(2) for _ in range(n)]
        sb = [rng.randrange(2) for _ in range(n)]
        la, lb, lab = LFSR(cfg), LFSR(cfg), LFSR(cfg)
        la.step(sa)
        lb.step(sb)
        lab.step([x ^ y for x, y in zip(sa, sb)])
        assert lab.state == [x ^ y for x, y in zip(la.state, lb.state)]

    @given(st.integers(0, 100_000))
    @settings(max_examples=15)
    def test_clear_then_freerun_stays_zero(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 32)
        lfsr = LFSR(LFSRConfig(size=n), [rng.randrange(2) for _ in range(n)])
        lfsr.clear()
        for _ in range(rng.randint(1, 20)):
            lfsr.step(None)
        assert lfsr.state == [0] * n
