"""Tests for the resource-governed runtime: budgets, guarded outcomes,
and budget threading through the solver, PODEM and the fault simulator."""

import pytest

from repro.attacks import exhausted_result
from repro.attacks.oracle import OracleBudgetExceeded
from repro.atpg import PODEM, FaultSimulator, TestOutcome, full_fault_list, sat_generate
from repro.bench import c17
from repro.runtime import (
    Budget,
    BudgetExhausted,
    DeadlineExpired,
    ResourceExhausted,
    RunStatus,
    run_guarded,
    run_with_retry,
)
from repro.sat import CNF, Solver
from repro.sim import random_words

pytestmark = pytest.mark.robust


def pigeonhole(n_holes: int) -> CNF:
    """PHP(n+1, n): classically hard UNSAT — a reliable conflict source."""
    cnf = CNF()
    p = [[cnf.new_var() for _ in range(n_holes)] for _ in range(n_holes + 1)]
    for row in p:
        cnf.add_clause(row)
    for h in range(n_holes):
        for i in range(n_holes + 1):
            for j in range(i + 1, n_holes + 1):
                cnf.add_clause([-p[i][h], -p[j][h]])
    return cnf


class TestBudget:
    def test_conflict_cap_raises(self):
        b = Budget(max_conflicts=3)
        b.charge_conflict()
        b.charge_conflict()
        with pytest.raises(BudgetExhausted):
            b.charge_conflict()
        assert b.conflicts == 3

    def test_backtrack_and_pattern_caps(self):
        b = Budget(max_backtracks=2, max_patterns=100)
        b.charge_backtrack()
        with pytest.raises(BudgetExhausted):
            b.charge_backtrack()
        b2 = Budget(max_patterns=100)
        b2.charge_patterns(64)
        with pytest.raises(BudgetExhausted):
            b2.charge_patterns(64)
        assert b2.patterns == 128

    def test_deadline_expiry(self):
        b = Budget(wall_s=1e-9)
        with pytest.raises(DeadlineExpired):
            b.check_deadline()
        assert b.expired()

    def test_no_limits_never_raises(self):
        b = Budget()
        for _ in range(100):
            b.charge_conflict()
            b.charge_backtrack()
            b.charge_patterns(10_000)
        b.check_deadline()
        assert not b.expired() and not b.exhausted()

    def test_force_expire(self):
        b = Budget(wall_s=3600)
        b.check_deadline()
        b.force_expire()
        assert b.expired()
        with pytest.raises(DeadlineExpired):
            b.check_deadline()

    def test_exhausted_probes_caps_not_just_deadline(self):
        b = Budget(max_conflicts=1)
        assert not b.exhausted()
        with pytest.raises(BudgetExhausted):
            b.charge_conflict()
        assert b.exhausted()
        assert not b.expired()  # deadline-only probe stays false

    def test_restart_rewinds_everything(self):
        b = Budget(wall_s=3600, max_conflicts=2)
        with pytest.raises(BudgetExhausted):
            for _ in range(5):
                b.charge_conflict()
        b.force_expire()
        b.restart()
        assert b.conflicts == 0 and not b.expired() and not b.exhausted()
        b.charge_conflict()  # one conflict fits again

    def test_spend_snapshot(self):
        b = Budget()
        b.charge_conflict(4)
        b.charge_patterns(64)
        s = b.spend()
        assert s["conflicts"] == 4 and s["patterns"] == 64
        assert s["elapsed_s"] >= 0

    def test_exception_taxonomy(self):
        assert issubclass(BudgetExhausted, ResourceExhausted)
        assert issubclass(DeadlineExpired, ResourceExhausted)
        assert BudgetExhausted.kind == "budget"
        assert DeadlineExpired.kind == "timeout"
        assert issubclass(OracleBudgetExceeded, BudgetExhausted)


class TestRunGuarded:
    def test_ok(self):
        out = run_guarded(lambda x: x + 1, 41)
        assert out.ok and out.status is RunStatus.OK and out.value == 42
        assert out.elapsed_s >= 0

    def test_budget_classified(self):
        def boom():
            raise BudgetExhausted("caps out")

        out = run_guarded(boom)
        assert out.status is RunStatus.BUDGET and not out.ok
        assert out.value is None and "caps out" in out.error

    def test_timeout_classified(self):
        def slow():
            Budget(wall_s=1e-9).check_deadline()

        out = run_guarded(slow)
        assert out.status is RunStatus.TIMEOUT
        assert out.error_type == "DeadlineExpired"

    def test_oracle_budget_maps_to_budget(self):
        def q():
            raise OracleBudgetExceeded("oracle budget of 5 queries exceeded")

        assert run_guarded(q).status is RunStatus.BUDGET

    def test_error_captures_traceback(self):
        def broken():
            raise ValueError("bad row")

        out = run_guarded(broken)
        assert out.status is RunStatus.ERROR
        assert out.error_type == "ValueError"
        assert "bad row" in out.traceback

    def test_keyboard_interrupt_propagates(self):
        def die():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_guarded(die)

    def test_budget_spend_in_diagnostics(self):
        b = Budget()

        def work():
            b.charge_conflict(7)

        out = run_guarded(work, budget=b)
        assert out.diagnostics["budget"]["conflicts"] == 7


class TestRunWithRetry:
    def test_error_retried_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        slept = []
        out = run_with_retry(
            flaky, retries=3, backoff_s=0.5, sleep=slept.append
        )
        assert out.ok and out.value == "done" and out.attempts == 3
        assert slept == [0.5, 1.0]  # deterministic exponential backoff
        assert len(out.diagnostics["retry_history"]) == 2

    def test_retry_history_records_every_failed_attempt(self):
        def broken(budget=None):
            raise ValueError("attempt failed")

        slept = []
        out = run_with_retry(broken, retries=2, backoff_s=0.25,
                             sleep=slept.append)
        assert out.status is RunStatus.ERROR and out.attempts == 3
        history = out.diagnostics["retry_history"]
        assert [h["attempt"] for h in history] == [1, 2]
        assert all(h["status"] == "error" for h in history)
        assert all("attempt failed" in h["error"] for h in history)
        # the injected sleep pins the schedule: backoff_s * 2**attempt
        assert slept == [0.25, 0.5]

    def test_budget_outcomes_not_retried(self):
        calls = []

        def capped():
            calls.append(1)
            raise BudgetExhausted("deliberate")

        out = run_with_retry(capped, retries=5, sleep=lambda s: None)
        assert out.status is RunStatus.BUDGET and len(calls) == 1

    def test_fresh_budget_forwarded_each_attempt(self):
        seen = []

        def work(budget=None):
            seen.append(budget)
            if len(seen) < 2:
                raise OSError("transient")
            budget.charge_conflict()
            return "ok"

        out = run_with_retry(
            work,
            budget_factory=lambda: Budget(max_conflicts=10),
            retries=2,
            sleep=lambda s: None,
        )
        assert out.ok
        assert len(seen) == 2 and seen[0] is not seen[1]


class TestSolverBudget:
    def test_shared_budget_bounds_sum_of_solves(self):
        budget = Budget(max_conflicts=30)
        with pytest.raises(BudgetExhausted):
            while True:  # PHP(6,5) alone needs far more than 30 conflicts
                Solver(pigeonhole(5)).solve(budget=budget)
        assert budget.conflicts == 30

    def test_solver_reusable_after_budget_abort(self):
        s = Solver(pigeonhole(5))
        with pytest.raises(BudgetExhausted):
            s.solve(budget=Budget(max_conflicts=5))
        res = s.solve()  # restored to level 0; full solve still works
        assert res.sat is False

    def test_legacy_conflict_budget_still_works(self):
        with pytest.raises(BudgetExhausted):
            Solver(pigeonhole(5)).solve(conflict_budget=5)

    def test_deadline_aborts_solve(self):
        b = Budget(wall_s=3600)
        b.force_expire()
        with pytest.raises(DeadlineExpired):
            Solver(pigeonhole(5)).solve(budget=b)

    def test_easy_solve_fits_budget(self):
        cnf = CNF()
        v = cnf.new_vars(3)
        cnf.add_clause([v[0], v[1]])
        cnf.add_clause([-v[0], v[2]])
        res = Solver(cnf).solve(budget=Budget(max_conflicts=1000))
        assert res.sat


class TestATPGBudget:
    def test_podem_charges_shared_backtracks(self):
        # y = a OR (a AND b): proving 't sa*' faults redundant forces
        # PODEM to backtrack through its whole decision space
        from repro.netlist import GateType, Netlist

        nl = Netlist("red")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("t", GateType.AND, ["a", "b"])
        nl.add_gate("y", GateType.OR, ["a", "t"])
        nl.set_outputs(["y"])
        budget = Budget(max_backtracks=1)
        podem = PODEM(nl, max_backtracks=50)
        hit = False
        for fault in full_fault_list(nl):
            try:
                podem.generate(fault, budget=budget)
            except BudgetExhausted:
                hit = True
                break
        assert hit, "no fault ever backtracked: cap never exercised"

    def test_podem_local_limit_still_aborts_not_raises(self):
        nl = c17()
        podem = PODEM(nl, max_backtracks=0)
        results = [podem.generate(f) for f in full_fault_list(nl)]
        assert all(
            r.outcome in (TestOutcome.DETECTED, TestOutcome.ABORTED,
                          TestOutcome.REDUNDANT)
            for r in results
        )

    def test_faultsim_charges_patterns(self):
        nl = c17()
        faults = full_fault_list(nl)
        words = {n: w for n, w in zip(nl.inputs, random_words(len(nl.inputs), 64))}
        budget = Budget(max_patterns=3 * 64)
        sim = FaultSimulator(nl)
        with pytest.raises(BudgetExhausted):
            sim.run(faults, words, 64, budget=budget)
        assert budget.patterns >= 3 * 64

    def test_sat_generate_local_abort_vs_shared_budget(self):
        nl = c17()
        fault = full_fault_list(nl)[0]
        # local per-call cap: swallowed into ABORTED
        res = sat_generate(nl, fault, conflict_budget=1)
        assert res.outcome is TestOutcome.ABORTED
        # shared budget violation: propagates to the caller
        b = Budget(wall_s=3600)
        b.force_expire()
        with pytest.raises(DeadlineExpired):
            sat_generate(nl, fault, budget=b)


class TestAttackResultStatus:
    def test_default_status_ok(self):
        from repro.attacks.result import AttackResult

        r = AttackResult(
            attack="x", recovered_key={}, completed=True,
            iterations=1, oracle_queries=1,
        )
        assert r.status == "ok"

    def test_exhausted_result_maps_kind(self):
        r = exhausted_result("sat", BudgetExhausted("caps"), iterations=9)
        assert r.status == "budget" and not r.completed
        assert r.iterations == 9 and r.recovered_key is None
        t = exhausted_result("sat", DeadlineExpired("late"))
        assert t.status == "timeout"
