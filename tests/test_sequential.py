"""Unit tests for the sequential/scan circuit model."""

import pytest

from repro.bench import s27_like
from repro.netlist import (
    FlipFlop,
    GateType,
    Netlist,
    NetlistError,
    SequentialCircuit,
)


@pytest.fixture
def toggle():
    """A 2-bit counter-ish design: ff0 toggles, ff1 = ff0 & en."""
    core = Netlist("cnt")
    core.add_input("en")
    core.add_input("q0")
    core.add_input("q1")
    core.add_gate("d0", GateType.NOT, ["q0"])
    core.add_gate("d1", GateType.XOR, ["q1", "t"])
    core.add_gate("t", GateType.AND, ["q0", "en"])
    core.add_gate("po", GateType.OR, ["q0", "q1"])
    core.set_outputs(["po", "d0", "d1"])
    seq = SequentialCircuit(core, name="cnt")
    seq.add_flop(FlipFlop("ff0", d="d0", q="q0"))
    seq.add_flop(FlipFlop("ff1", d="d1", q="q1"))
    seq.build_scan_chains(1)
    return seq


class TestStructure:
    def test_primary_io_excludes_pseudo(self, toggle):
        assert toggle.primary_inputs == ["en"]
        assert toggle.primary_outputs == ["po"]
        assert toggle.state_width == 2

    def test_duplicate_flop_rejected(self, toggle):
        with pytest.raises(NetlistError):
            toggle.add_flop(FlipFlop("ff0", d="d0", q="q0"))

    def test_flop_requires_existing_nets(self):
        core = Netlist("c")
        core.add_input("q")
        core.add_gate("d", GateType.NOT, ["q"])
        core.set_outputs(["d"])
        seq = SequentialCircuit(core)
        with pytest.raises(NetlistError):
            seq.add_flop(FlipFlop("f", d="nope", q="q"))
        with pytest.raises(NetlistError):
            seq.add_flop(FlipFlop("f", d="d", q="nope"))

    def test_scan_chain_balance(self, toggle):
        chains = toggle.build_scan_chains(2)
        assert len(chains) == 2
        assert sorted(c.cells[0] for c in chains) == ["ff0", "ff1"]

    def test_scan_chain_explicit_order(self, toggle):
        chains = toggle.build_scan_chains(1, order=["ff1", "ff0"])
        assert chains[0].cells == ["ff1", "ff0"]

    def test_scan_chain_unknown_flop(self, toggle):
        with pytest.raises(NetlistError):
            toggle.build_scan_chains(1, order=["ff0", "nope"])

    def test_validate_chain_coverage(self, toggle):
        toggle.scan_chains[0].cells.pop()
        with pytest.raises(NetlistError):
            toggle.validate()


class TestFunctionalSemantics:
    def test_next_state_toggles(self, toggle):
        st = toggle.reset_state()
        st1, po = toggle.next_state(st, {"en": 1})
        assert st1 == {"ff0": 1, "ff1": 0}
        assert po == {"po": 0}
        st2, po2 = toggle.next_state(st1, {"en": 1})
        assert st2 == {"ff0": 0, "ff1": 1}
        assert po2 == {"po": 1}

    def test_reset_state_value(self, toggle):
        assert toggle.reset_state(1) == {"ff0": 1, "ff1": 1}

    def test_s27_like_runs(self):
        s = s27_like()
        st = s.reset_state()
        seen = []
        for _ in range(8):
            st, po = s.next_state(st, {"G0": 1, "G1": 0, "G2": 0, "G3": 1})
            seen.append(po["G17"])
        assert set(seen) <= {0, 1}


class TestScanSemantics:
    def test_shift_moves_toward_scan_out(self, toggle):
        st = {"ff0": 1, "ff1": 0}
        nxt, outs = toggle.scan_shift(st, {"chain0": 0})
        # chain order is [ff0, ff1]: ff1 exits, ff0's value moves into ff1
        assert outs["chain0"] == 0
        assert nxt == {"ff0": 0, "ff1": 1}

    def test_load_then_unload_roundtrip(self, toggle):
        target = {"ff0": 1, "ff1": 1}
        st = toggle.load_state_via_scan(toggle.reset_state(), target)
        assert st == target
        _, observed = toggle.unload_state_via_scan(st)
        assert observed == target

    def test_load_roundtrip_multi_chain(self, toggle):
        toggle.build_scan_chains(2)
        target = {"ff0": 1, "ff1": 0}
        st = toggle.load_state_via_scan(toggle.reset_state(), target)
        assert st == target
        _, observed = toggle.unload_state_via_scan(st)
        assert observed == target

    def test_scan_requires_chains(self):
        core = Netlist("c")
        core.add_input("q")
        core.add_gate("d", GateType.NOT, ["q"])
        core.set_outputs(["d"])
        seq = SequentialCircuit(core)
        seq.add_flop(FlipFlop("f", d="d", q="q"))
        with pytest.raises(NetlistError):
            seq.scan_shift({"f": 0}, {})


class TestScanRoundtripProperty:
    def test_random_states_roundtrip(self):
        import random

        rng = random.Random(3)
        s = s27_like()
        s.build_scan_chains(2)
        for _ in range(20):
            target = {ff.name: rng.randrange(2) for ff in s.flops}
            st = s.load_state_via_scan(s.reset_state(), target)
            assert st == target
            _, observed = s.unload_state_via_scan(st)
            assert observed == target
