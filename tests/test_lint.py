"""The static-analysis subsystem: one firing test per rule, the golden
corpus (every bundled benchmark must lint clean), waivers, the registry,
the CLI driver, and the ExperimentRunner pre-flight integration."""

import copy
import io
import json
from types import SimpleNamespace

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.experiments.attack_matrix import run_attack_matrix
from repro.experiments.runner import ExperimentRunner, RunPolicy, RunStatus
from repro.lint import (
    Diagnostic,
    LintConfig,
    LintReport,
    Location,
    SchemeSubject,
    Severity,
    Waiver,
    all_rules,
    get_rule,
    lint_bench_text,
    lint_cnf,
    lint_locked,
    lint_netlist,
    lint_orap,
    lint_paper_benchmarks,
    lint_verilog_path,
    merge_reports,
    rule,
)
from repro.lint.cli import catalog_text, lint_orap_chips, lint_path, run_lint
from repro.locking import LockedCircuit, WLLConfig, lock_weighted
from repro.netlist import GateType, Netlist
from repro.orap.scheme import OraPConfig, closed_fanin_cone, protect
from repro.sat.cnf import CNF

#: rule ids proven to fire somewhere in this module; the meta-test at the
#: bottom asserts the whole catalog is covered
FIRED: set[str] = set()


def fired(report, rule_id):
    """Assert one rule fired in a report (or diagnostic list) and log it."""
    diags = list(report)
    assert any(d.rule_id == rule_id for d in diags), (
        f"{rule_id} did not fire; got {[d.rule_id for d in diags]}"
    )
    FIRED.add(rule_id)
    return [d for d in diags if d.rule_id == rule_id]


def check(rule_id, subject, config=None):
    """Run one rule's checker directly (isolates multi-rule subjects)."""
    return list(get_rule(rule_id).check(subject, config or LintConfig()))


@pytest.fixture(scope="module")
def orap_basic():
    seq = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=90, seed=5, name="lintchip"
            ),
            n_flops=6,
        )
    )
    return protect(
        seq,
        orap=OraPConfig(variant="basic"),
        wll=WLLConfig(key_width=8, n_key_gates=4),
        rng=5,
    )


@pytest.fixture(scope="module")
def orap_modified():
    seq = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=90, seed=5, name="lintchip"
            ),
            n_flops=6,
        )
    )
    return protect(
        seq,
        orap=OraPConfig(variant="modified"),
        wll=WLLConfig(key_width=8, n_key_gates=4),
        rng=5,
    )


# ------------------------------------------------------------------ #
# netlist rules


class TestNetlistRules:
    def test_nl001_combinational_cycle(self):
        report = lint_bench_text(
            "INPUT(c)\nOUTPUT(a)\na = AND(b, c)\nb = AND(a, c)\n"
        )
        (diag,) = fired(report, "NL001")
        assert diag.severity is Severity.ERROR
        assert "->" in diag.message

    def test_nl001_respects_allow_cycles(self):
        nl = Netlist("cyc", allow_cycles=True)
        nl.add_input("c")
        nl.add_gate("a", GateType.AND, ("b", "c"))
        nl.add_gate("b", GateType.AND, ("a", "c"))
        nl.set_outputs(["a"])
        assert not [d for d in lint_netlist(nl) if d.rule_id == "NL001"]

    def test_nl002_undefined_fanin(self):
        report = lint_bench_text("INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n")
        (diag,) = fired(report, "NL002")
        assert "ghost" in diag.message
        assert diag.location.line_no == 3  # provenance of the reading gate

    def test_nl003_undriven_output(self):
        report = lint_bench_text("INPUT(a)\nOUTPUT(o)\n")
        fired(report, "NL003")

    def test_nl004_dead_net(self):
        report = lint_bench_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\nd = OR(a, b)\n"
        )
        (diag,) = fired(report, "NL004")
        assert diag.severity is Severity.WARNING
        assert "'d'" in diag.message

    def test_nl005_unused_input(self):
        report = lint_bench_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NOT(a)\n"
        )
        (diag,) = fired(report, "NL005")
        assert "'b'" in diag.message

    def test_nl006_duplicate_fanin(self):
        report = lint_bench_text("INPUT(a)\nOUTPUT(o)\no = XOR(a, a)\n")
        fired(report, "NL006")

    def test_nl007_constant_output(self):
        nl = Netlist("const")
        nl.add_input("a")
        nl.add_gate("k", GateType.CONST0, ())
        nl.add_gate("o", GateType.BUF, ("k",))
        nl.add_gate("p", GateType.BUF, ("a",))
        nl.set_outputs(["o", "p"])
        (diag,) = fired(lint_netlist(nl), "NL007")
        assert "'o'" in diag.message

    def test_nl008_key_named_internal_net(self):
        nl = Netlist("key")
        nl.add_input("a")
        nl.add_gate("keyinput0", GateType.BUF, ("a",))
        nl.set_outputs(["keyinput0"])
        (diag,) = fired(lint_netlist(nl), "NL008")
        assert diag.severity is Severity.ERROR

    def test_nl009_fanout_anomaly(self):
        text = (
            "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nOUTPUT(z)\n"
            "x = NOT(a)\ny = NOT(a)\nz = NOT(a)\n"
        )
        report = lint_bench_text(text, config=LintConfig(max_fanout=2))
        (diag,) = fired(report, "NL009")
        assert "3" in diag.message
        # default threshold: same netlist is fine
        assert not [d for d in lint_bench_text(text) if d.rule_id == "NL009"]

    def test_nl010_depth_anomaly(self):
        nl = Netlist("chain")
        prev = nl.add_input("a")
        for i in range(40):
            prev = nl.add_gate(f"n{i}", GateType.NOT, (prev,))
        nl.set_outputs([prev])
        fired(lint_netlist(nl), "NL010")

    def test_nl011_multiply_driven_net(self):
        report = lint_bench_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b)\nx = OR(a, b)\n"
        )
        (diag,) = fired(report, "NL011")
        assert diag.location.line_no == 5
        assert "line 4" in diag.message

    def test_nl012_unknown_gate_op(self):
        report = lint_bench_text("INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n")
        (diag,) = fired(report, "NL012")
        assert "FROB" in diag.message

    def test_flop_q_nets_are_not_unused_inputs(self):
        # full-scan view: a DFF's Q net may legitimately feed nothing
        report = lint_bench_text(
            "INPUT(a)\nOUTPUT(o)\nq = DFF(o)\no = AND(a, a)\n"
        )
        assert not [d for d in report if d.rule_id == "NL005"]


# ------------------------------------------------------------------ #
# scheme (WLL) rules


def _wll_locked():
    from repro.bench import c17

    return lock_weighted(
        c17(),
        WLLConfig(key_width=4, control_width=2, n_key_gates=2),
        rng=1,
    )


class TestSchemeRules:
    def test_wl001_arity_drift(self):
        locked = _wll_locked()
        ctrl = locked.extra["control_gates"][0]
        g = locked.locked.gate(ctrl)
        extra_key = next(
            k for k in locked.key_inputs if k not in g.fanin
        )
        locked.locked.replace_gate(ctrl, g.gtype, tuple(g.fanin) + (extra_key,))
        diags = check("WL001", SchemeSubject(locked=locked))
        assert diags
        FIRED.add("WL001")
        assert any("inputs" in d.message for d in diags)

    def test_wl001_stale_metadata(self):
        locked = _wll_locked()
        locked.extra["control_gates"] = list(
            locked.extra["control_gates"]
        ) + ["ghost_ctrl"]
        diags = check("WL001", SchemeSubject(locked=locked))
        assert any("does not exist" in d.message for d in diags)

    def test_wl002_unused_key_bit(self):
        locked = _wll_locked()
        locked.locked.add_input("keyinput9")
        locked.key_inputs.append("keyinput9")
        locked.correct_key["keyinput9"] = 0
        (diag,) = check("WL002", SchemeSubject(locked=locked))
        FIRED.add("WL002")
        assert "keyinput9" in diag.message

    def test_wl003_reuse_imbalance(self):
        nl = Netlist("imba")
        nl.add_input("keyinput0")
        nl.add_input("keyinput1")
        nl.add_input("a")
        ctrls = []
        for i in range(4):
            ctrls.append(nl.add_gate(f"c{i}", GateType.AND, ("keyinput0", "a")))
        ctrls.append(nl.add_gate("c4", GateType.AND, ("keyinput1", "a")))
        nl.set_outputs(ctrls)
        locked = LockedCircuit(
            locked=nl,
            key_inputs=["keyinput0", "keyinput1"],
            correct_key={"keyinput0": 0, "keyinput1": 0},
            original=nl,
            scheme="wll",
            extra={
                "config": WLLConfig(key_width=2, control_width=2, n_key_gates=5),
                "control_gates": ctrls,
            },
        )
        (diag,) = check("WL003", SchemeSubject(locked=locked))
        FIRED.add("WL003")
        assert "unbalanced" in diag.message

    def test_clean_wll_lock_has_no_scheme_findings(self):
        report = lint_locked(_wll_locked())
        assert report.is_clean()
        assert {"WL001", "WL002", "WL003"} <= set(report.rules_run)


# ------------------------------------------------------------------ #
# OraP rules


class TestOrapRules:
    def test_or001_suppressed_pulse_generator(self, orap_basic):
        design = copy.deepcopy(orap_basic)
        design.chip.key_register.pulses[0].suppressed = True
        diags = check("OR001", design)
        FIRED.add("OR001")
        assert "cell 0" in diags[0].message

    def test_or002_reseed_coverage(self, orap_basic):
        stub = SimpleNamespace(
            lfsr_config=orap_basic.lfsr_config,
            key_sequence=SimpleNamespace(
                schedule=SimpleNamespace(inject=(False,) * 4, n_cycles=4)
            ),
        )
        diags = check("OR002", stub)
        FIRED.add("OR002")
        assert len(diags) == orap_basic.lfsr_config.size

    def test_or003_basic_with_response_points(self, orap_basic):
        design = copy.deepcopy(orap_basic)
        design.response_points = (0,)
        design.response_flops = ()
        (diag,) = check("OR003", design)
        FIRED.add("OR003")
        assert "basic" in diag.message

    def test_or003_wrong_split(self, orap_modified):
        design = copy.deepcopy(orap_modified)
        design.response_points = design.response_points[:-1]
        design.response_flops = design.response_flops[:-1]
        diags = check("OR003", design)
        assert any("half" in d.message for d in diags)

    def test_or004_key_in_response_cone(self, orap_modified):
        design = copy.deepcopy(orap_modified)
        cone = closed_fanin_cone(design.design, list(design.response_flops))
        tainted_net = sorted(cone)[0]
        design.locked.key_gate_nets.append(tainted_net)
        diags = check("OR004", design)
        FIRED.add("OR004")
        assert any(tainted_net in d.message for d in diags)

    def test_or005_unlock_misses_key(self, orap_basic):
        design = copy.deepcopy(orap_basic)
        k0 = design.locked.key_inputs[0]
        design.locked.correct_key[k0] ^= 1
        (diag,) = check("OR005", design)
        FIRED.add("OR005")
        assert "misses the key" in diag.message

    def test_or006_key_width_mismatch(self, orap_basic):
        design = copy.deepcopy(orap_basic)
        design.locked.key_inputs.append("keyinput_extra")
        (diag,) = check("OR006", design)
        FIRED.add("OR006")
        assert str(design.lfsr_config.size) in diag.message

    def test_clean_designs_pass_all_orap_rules(self, orap_basic, orap_modified):
        for design in (orap_basic, orap_modified):
            report = lint_orap(design)
            assert report.is_clean(), report.format()
            assert {f"OR00{i}" for i in range(1, 7)} <= set(report.rules_run)


# ------------------------------------------------------------------ #
# CNF rules


class TestCnfRules:
    def test_cn001_literal_out_of_range(self):
        report = lint_cnf(CNF(n_vars=2, clauses=[(1, 5)]))
        (diag,) = fired(report, "CN001")
        assert "n_vars=2" in diag.message

    def test_cn001_zero_literal(self):
        report = lint_cnf(CNF(n_vars=1, clauses=[(0,)]))
        assert [d for d in report if d.rule_id == "CN001"]

    def test_cn002_tautology(self):
        cnf = CNF()
        cnf.add_clause([1, -1, 2])
        (diag,) = fired(lint_cnf(cnf), "CN002")
        assert diag.severity is Severity.WARNING

    def test_cn003_duplicate_clause(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([2, 1])  # same clause, different order
        (diag,) = fired(lint_cnf(cnf), "CN003")
        assert "duplicates clause 0" in diag.message

    def test_cn004_duplicate_literal(self):
        cnf = CNF()
        cnf.add_clause([1, 1, 2])
        fired(lint_cnf(cnf), "CN004")

    def test_cn005_empty_clause(self):
        report = lint_cnf(CNF(n_vars=1, clauses=[()]))
        (diag,) = fired(report, "CN005")
        assert "UNSAT" in diag.message

    def test_cn006_key_variable_uncovered(self):
        cnf = CNF(n_vars=3, clauses=[(1, 2)])
        report = lint_cnf(cnf, key_vars=[2, 3])
        (diag,) = fired(report, "CN006")
        assert "3" in diag.message

    def test_real_circuit_encoding_is_clean(self):
        from repro.bench import c17
        from repro.sat.tseitin import CircuitEncoder

        enc = CircuitEncoder(c17())
        key_vars = [enc.var(i) for i in enc.netlist.inputs]
        report = lint_cnf(enc.cnf, key_vars=key_vars)
        assert report.is_clean()


# ------------------------------------------------------------------ #
# file drivers (IO001) and the verilog parity contract


class TestFileDrivers:
    def test_io001_unknown_suffix(self, tmp_path):
        report = lint_path(tmp_path / "netlist.xyz")
        (diag,) = fired(report, "IO001")
        assert "unsupported file type" in diag.message

    def test_io001_missing_file(self, tmp_path):
        report = lint_path(tmp_path / "missing.bench")
        assert [d for d in report if d.rule_id == "IO001"]

    def test_io001_unparseable_verilog(self, tmp_path):
        p = tmp_path / "broken.v"
        p.write_text("this is not verilog\n")
        report = lint_verilog_path(p)
        (diag,) = fired(report, "IO001")
        assert "cannot parse Verilog" in diag.message
        assert str(p) in diag.location.source

    def test_verilog_error_carries_line_number(self, tmp_path):
        p = tmp_path / "badstmt.v"
        p.write_text(
            "module m (a, y);\n"
            "input a;\n"
            "output y;\n"
            "frobnicate q (y, a);\n"
            "endmodule\n"
        )
        report = lint_verilog_path(p)
        (diag,) = [d for d in report if d.rule_id == "IO001"]
        assert f"{p}:4" in diag.message

    def test_good_verilog_round_trip_lints_clean(self, tmp_path):
        from repro.bench import c17
        from repro.netlist import SequentialCircuit, write_verilog

        p = tmp_path / "c17.v"
        p.write_text(write_verilog(SequentialCircuit(c17(), name="c17")))
        report = lint_verilog_path(p)
        assert report.is_clean(strict=True), report.format()

    def test_bench_path_dispatch(self, tmp_path):
        p = tmp_path / "tiny.bench"
        p.write_text("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n")
        report = lint_path(p)
        assert report.is_clean(strict=True)

    def test_io001_unparseable_dimacs(self, tmp_path):
        p = tmp_path / "bad.cnf"
        p.write_text("p cnf garbage\n1 0\n")
        report = lint_path(p)
        assert [d for d in report if d.rule_id == "IO001"]

    def test_good_dimacs_lints(self, tmp_path):
        p = tmp_path / "ok.cnf"
        p.write_text("p cnf 2 2\n1 2 0\n-1 2 0\n")
        report = lint_path(p)
        assert report.is_clean(strict=True)


# ------------------------------------------------------------------ #
# registry, waivers, config


class TestRegistry:
    def test_catalog_is_complete(self):
        rules = all_rules()
        assert len(rules) >= 25
        assert [r.id for r in rules] == sorted(r.id for r in rules)
        for r in rules:
            assert r.rationale, f"{r.id} has no rationale"
            assert r.analyzer in ("netlist", "scheme", "orap", "cnf")

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):

            @rule("NL001", "again", Severity.ERROR, "netlist", "dup")
            def nope(subject, config):
                return ()

    def test_unknown_analyzer_rejected(self):
        with pytest.raises(ValueError, match="unknown analyzer"):
            rule("XX001", "x", Severity.ERROR, "quantum", "nope")

    def test_waiver_requires_reason(self):
        with pytest.raises(ValueError, match="needs a reason"):
            Waiver(rule_id="NL004", pattern="*", reason="   ")

    def test_waiver_marks_but_keeps_finding(self):
        cfg = LintConfig(
            waivers=(
                Waiver(
                    rule_id="NL004",
                    pattern="d",
                    reason="fixture intentionally keeps a dead cone",
                ),
            )
        )
        report = lint_bench_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\nd = OR(a, b)\n",
            config=cfg,
        )
        waived = [d for d in report if d.rule_id == "NL004"]
        assert waived and all(d.waived for d in waived)
        assert report.is_clean(strict=True)
        assert "waived" in report.summary()

    def test_disabled_rule_does_not_run(self):
        cfg = LintConfig(disabled_rules=frozenset({"NL005"}))
        report = lint_bench_text("INPUT(a)\nOUTPUT(o)\no = CONST0()\n", config=cfg)
        assert "NL005" not in report.rules_run


class TestDiagnostics:
    def test_format_is_compiler_style(self):
        diag = Diagnostic(
            rule_id="NL002",
            severity=Severity.ERROR,
            message="gate 'g' reads undefined net 'x'",
            location=Location(obj="g", source="a.bench", line_no=7),
            hint="define 'x'",
        )
        text = diag.format()
        assert text.startswith("a.bench:7 g: error[NL002]")
        assert "(hint: define 'x')" in text

    def test_to_dict_round_trips_severity(self):
        diag = Diagnostic("CN005", Severity.ERROR, "empty")
        d = diag.to_dict()
        assert d["rule"] == "CN005" and d["severity"] == "error"

    def test_sorted_puts_errors_first(self):
        report = LintReport(subject="s")
        report.add(Diagnostic("NL009", Severity.INFO, "i"))
        report.add(Diagnostic("NL004", Severity.WARNING, "w"))
        report.add(Diagnostic("NL002", Severity.ERROR, "e"))
        assert [d.rule_id for d in report.sorted()] == ["NL002", "NL004", "NL009"]

    def test_merge_reports(self):
        a = lint_bench_text("INPUT(a)\nOUTPUT(o)\n", source="a")
        b = lint_bench_text("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n", source="b")
        merged = merge_reports("both", [a, b])
        assert merged.subject == "both"
        assert len(merged) == len(a) + len(b)
        assert set(a.rules_run) <= set(merged.rules_run)


# ------------------------------------------------------------------ #
# golden corpus: everything this repo ships must lint clean


class TestGoldenCorpus:
    def test_every_bundled_benchmark_is_clean(self):
        reports = lint_paper_benchmarks()
        assert len(reports) >= 10
        for report in reports:
            assert len(report.active()) == 0, report.format()

    def test_netlist_rule_coverage_on_corpus(self):
        report = lint_paper_benchmarks(circuits=["s38417"])[0]
        expected = {f"NL{i:03d}" for i in range(1, 11)}
        assert expected <= set(report.rules_run)

    def test_orap_chips_are_clean(self):
        reports = lint_orap_chips()
        assert len(reports) == 2
        for report in reports:
            assert len(report.active()) == 0, report.format()

    def test_generator_never_orphans_inputs(self):
        # regression: pruning used to leave unused PIs at small scales
        nl = generate_sequential(
            SequentialConfig(
                comb=GeneratorConfig(
                    n_inputs=30, n_outputs=20, n_gates=120, seed=11, name="g"
                ),
                n_flops=8,
            )
        )
        report = lint_netlist(nl)
        assert not [d for d in report if d.rule_id == "NL005"], report.format()


# ------------------------------------------------------------------ #
# ExperimentRunner pre-flight


def _error_report():
    report = LintReport(subject="bad")
    report.add(
        Diagnostic(
            "NL002",
            Severity.ERROR,
            "gate 'g' reads undefined net 'x'",
            location=Location(obj="g", source="bad.bench", line_no=3),
        )
    )
    return report


class TestRunnerPreflight:
    def test_error_report_becomes_error_row(self):
        runner = ExperimentRunner("pf", RunPolicy())
        ran = []
        outcome = runner.run_row(
            "row1", lambda: ran.append(1), preflight=_error_report
        )
        assert outcome.status is RunStatus.ERROR
        assert not ran, "compute must not run after a failed pre-flight"
        assert outcome.error_type == "LintError"
        assert "NL002" in outcome.error
        lint_payload = outcome.diagnostics["lint"]
        assert lint_payload[0]["rule"] == "NL002"

    def test_clean_report_lets_row_run(self):
        runner = ExperimentRunner("pf", RunPolicy())
        outcome = runner.run_row(
            "row1", lambda: 42, preflight=lambda: LintReport(subject="ok")
        )
        assert outcome.status is RunStatus.OK and outcome.value == 42

    def test_warnings_do_not_fail_preflight(self):
        report = LintReport(subject="warn")
        report.add(Diagnostic("NL004", Severity.WARNING, "dead net"))
        runner = ExperimentRunner("pf", RunPolicy())
        outcome = runner.run_row("row1", lambda: 1, preflight=lambda: report)
        assert outcome.status is RunStatus.OK

    def test_crashing_preflight_is_error_row(self):
        def boom():
            raise ValueError("linter exploded")

        runner = ExperimentRunner("pf", RunPolicy())
        outcome = runner.run_row("row1", lambda: 1, preflight=boom)
        assert outcome.status is RunStatus.ERROR
        assert outcome.error_type == "ValueError"

    def test_failed_preflight_is_checkpointed(self, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True)
        runner = ExperimentRunner("pf", policy, fingerprint={"v": 1})
        runner.run_row("row1", lambda: 1, preflight=_error_report)
        saved = json.loads(
            next(tmp_path.rglob("*.json")).read_text()
        )
        assert saved["status"] == "error"
        assert saved["lint"][0]["rule"] == "NL002"

    def test_malformed_design_turns_matrix_into_error_rows(self, orap_basic):
        # the acceptance scenario: inject a structurally broken chip and
        # the whole attack matrix degrades to error rows, attack untouched
        broken = copy.deepcopy(orap_basic)
        broken.locked.correct_key[broken.locked.key_inputs[0]] ^= 1  # OR005
        cells = run_attack_matrix(design=broken, max_iterations=4)
        assert cells, "every cell must still produce a row"
        assert all(c.status == "error" for c in cells)
        assert all(not c.completed and not c.key_correct for c in cells)


# ------------------------------------------------------------------ #
# CLI driver


class TestCli:
    def test_list_rules(self):
        buf = io.StringIO()
        assert run_lint(list_rules=True, out=buf) == 0
        text = buf.getvalue()
        assert "NL001" in text and "OR005" in text and "CN006" in text
        assert catalog_text().splitlines()[0].startswith("ID")

    def test_clean_file_exits_zero(self, tmp_path):
        p = tmp_path / "ok.bench"
        p.write_text("INPUT(a)\nOUTPUT(o)\no = NOT(a)\n")
        buf = io.StringIO()
        assert run_lint(paths=[str(p)], out=buf) == 0
        assert "clean" in buf.getvalue()

    def test_error_file_exits_one(self, tmp_path):
        p = tmp_path / "bad.bench"
        p.write_text("INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n")
        buf = io.StringIO()
        assert run_lint(paths=[str(p)], out=buf) == 1
        assert "error[NL002]" in buf.getvalue()

    def test_strict_promotes_warnings(self, tmp_path):
        p = tmp_path / "warn.bench"
        p.write_text(
            "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\nd = OR(a, b)\n"
        )
        assert run_lint(paths=[str(p)], out=io.StringIO()) == 0
        assert run_lint(paths=[str(p)], strict=True, out=io.StringIO()) == 1

    def test_json_format(self, tmp_path):
        p = tmp_path / "bad.bench"
        p.write_text("INPUT(a)\nOUTPUT(o)\n")
        buf = io.StringIO()
        run_lint(paths=[str(p)], fmt="json", out=buf)
        payload = json.loads(buf.getvalue())
        assert payload[0]["errors"] >= 1
        assert any(d["rule"] == "NL003" for d in payload[0]["diagnostics"])

    def test_benchmarks_corpus_flag(self):
        buf = io.StringIO()
        assert run_lint(benchmarks=True, strict=True, out=buf) == 0
        assert "c17: clean" in buf.getvalue()

    def test_cli_subcommand_wiring(self, tmp_path, capsys):
        from repro.__main__ import main

        p = tmp_path / "bad.bench"
        p.write_text("INPUT(a)\nOUTPUT(o)\n")
        assert main(["lint", str(p)]) == 1
        assert "NL003" in capsys.readouterr().out


# ------------------------------------------------------------------ #
# meta: the whole catalog must be exercised (keep this class last)


class TestCatalogCoverage:
    def test_every_rule_has_a_firing_test(self):
        catalog = {r.id for r in all_rules()}
        missing = catalog - FIRED
        assert not missing, f"rules without a firing test: {sorted(missing)}"
