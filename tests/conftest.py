"""Test-suite configuration."""

from hypothesis import HealthCheck, settings

# property tests build netlists and run simulators inside strategies;
# generous deadlines keep them deterministic on slow CI boxes
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
