"""Tests for crash-safe checkpoints: atomicity, corruption tolerance."""

import json

import pytest

from repro.runtime import CheckpointStore, faultinject
from repro.runtime.faultinject import InjectedFault, corrupt_file, truncate_file

pytestmark = pytest.mark.robust


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path, "exp")


@pytest.fixture(autouse=True)
def clean_faults():
    yield
    faultinject.clear()


class TestRoundTrip:
    def test_save_load(self, store):
        payload = {"status": "ok", "row": {"hd": 43.5}, "fingerprint": {"s": 1}}
        store.save("c432", payload)
        assert store.load("c432") == payload

    def test_missing_is_none(self, store):
        assert store.load("nope") is None
        assert store.corrupted == []

    def test_keys_sorted_and_sanitized(self, store):
        store.save("b/20 x", {"v": 1})
        store.save("a1", {"v": 2})
        assert store.keys() == ["a1", "b_20_x"]
        assert len(store) == 2
        assert list(store) == store.keys()

    def test_discard_and_clear(self, store):
        store.save("k", {"v": 1})
        store.discard("k")
        store.discard("k")  # idempotent
        assert store.load("k") is None
        store.save("k2", {"v": 2})
        store.clear()
        assert len(store) == 0

    def test_overwrite_replaces(self, store):
        store.save("k", {"v": 1})
        store.save("k", {"v": 2})
        assert store.load("k") == {"v": 2}

    def test_no_temp_files_left_behind(self, store, tmp_path):
        for i in range(5):
            store.save(f"k{i}", {"v": i})
        assert not list(tmp_path.rglob("*.tmp"))


class TestCorruption:
    def test_truncated_file_treated_as_missing(self, store):
        store.save("k", {"status": "ok", "row": [1, 2, 3]})
        truncate_file(store.path_for("k"), keep_bytes=5)
        assert store.load("k") is None
        assert "k" in store.corrupted

    def test_garbage_head_treated_as_missing(self, store):
        store.save("k", {"status": "ok"})
        corrupt_file(store.path_for("k"))
        assert store.load("k") is None
        assert "k" in store.corrupted

    def test_non_dict_json_rejected(self, store):
        store.path_for("k").write_text(json.dumps([1, 2, 3]))
        assert store.load("k") is None
        assert "k" in store.corrupted

    def test_corrupt_checkpoint_warns_never_raises(self, store):
        """A torn checkpoint degrades to a recompute with a visible
        warning and a ``checkpoint.corrupt`` counter — not a traceback."""
        from repro import telemetry
        from repro.telemetry import MemorySink

        store.save("k", {"status": "ok", "row": {"hd": 1.0}})
        truncate_file(store.path_for("k"), keep_bytes=5)
        telemetry.configure(MemorySink())
        try:
            with pytest.warns(RuntimeWarning, match="skipping corrupt checkpoint"):
                assert store.load("k") is None
            assert telemetry.counter_totals().get("checkpoint.corrupt") == 1
        finally:
            telemetry.shutdown()

    def test_recompute_overwrites_corrupt_row(self, store):
        store.save("k", {"v": "good"})
        truncate_file(store.path_for("k"), keep_bytes=2)
        assert store.load("k") is None
        store.save("k", {"v": "recomputed"})
        assert store.load("k") == {"v": "recomputed"}


class TestAtomicity:
    def test_crash_before_rename_leaves_no_partial_row(self, store):
        """A kill between temp-write and rename must not publish the row."""
        faultinject.install("checkpoint.save", at=1)
        with pytest.raises(InjectedFault):
            store.save("k", {"v": 1})
        faultinject.clear()
        assert store.load("k") is None  # nothing published
        # the temp file is the only debris, and clear() sweeps it
        debris = list(store.dir.glob(".row-*.tmp"))
        assert len(debris) == 1
        store.clear()
        assert not list(store.dir.glob(".row-*.tmp"))

    def test_crash_during_overwrite_keeps_old_row(self, store):
        store.save("k", {"v": "old"})
        faultinject.install("checkpoint.save", at=1)
        with pytest.raises(InjectedFault):
            store.save("k", {"v": "new"})
        faultinject.clear()
        assert store.load("k") == {"v": "old"}
