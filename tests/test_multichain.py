"""Multi-scan-chain coverage: the protocol must hold for any chain count."""

import random

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, ScanCellKind, protect


@pytest.fixture(scope="module", params=[2, 3])
def protected(request):
    design = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=16, n_gates=120, depth=6, seed=41,
                name=f"mc{request.param}",
            ),
            n_flops=9,
            n_scan_chains=request.param,
        )
    )
    return protect(
        design,
        orap=OraPConfig(variant="basic", n_scan_chains=request.param),
        wll=WLLConfig(key_width=9, control_width=3, n_key_gates=4),
        rng=6,
    )


class TestMultiChain:
    def test_chain_count_and_coverage(self, protected):
        chip = protected.build_chip()
        assert len(chip.chains) == len(protected.design.scan_chains)
        key_cells = [
            c.ref for ch in chip.chains for c in ch
            if c.kind is ScanCellKind.KEY
        ]
        assert sorted(key_cells) == list(range(9))

    def test_unlock_and_clear(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        assert chip.is_unlocked()
        chip.enter_scan_mode()
        assert not chip.is_unlocked()

    def test_scan_roundtrip_across_chains(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.enter_scan_mode()
        rng = random.Random(2)
        target = {
            ff.name: rng.randrange(2) for ff in protected.design.flops
        }
        target.update(
            {f"kr{i}": rng.randrange(2) for i in range(9)}
        )
        chip.scan_load(target)
        observed = chip.scan_unload()
        for name, bit in target.items():
            assert observed[name] == bit, name

    def test_oracle_query_semantics(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        rng = random.Random(3)
        state = {ff.name: rng.randrange(2) for ff in protected.design.flops}
        pi = {p: rng.randrange(2) for p in chip.primary_inputs}
        po, captured = chip.oracle_query(pi, state)
        assignment = dict(pi)
        for k in protected.locked.key_inputs:
            assignment[k] = 0  # cleared register
        for ff in protected.design.flops:
            assignment[ff.q] = state[ff.name]
        values = protected.design.core.evaluate(assignment)
        assert po == {o: values[o] for o in chip.primary_outputs}
        for ff in protected.design.flops:
            assert captured[ff.name] == values[ff.d]
