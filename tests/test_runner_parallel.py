"""Tests for process-pool row parallelism in :class:`ExperimentRunner`.

Compute callables live at module level so they pickle into pool workers;
everything stateful (checkpoints, resume cache, preflights) must stay in
the parent — these tests pin that contract.
"""

import pytest

from repro.experiments import ExperimentRunner, RowTask, RunPolicy
from repro.lint import lint_netlist
from repro.netlist import GateType, Netlist
from repro.runtime import RunStatus


def _square(x, budget=None):
    return {"value": x * x}


def _fail_odd(x, budget=None):
    if x % 2:
        raise RuntimeError(f"odd input {x}")
    return {"value": x}


def _charge_patterns(n, budget=None):
    if budget is not None:
        budget.charge_patterns(n)
    return {"value": n}


def _good_preflight():
    nl = Netlist("ok")
    nl.add_input("a")
    nl.add_gate("y", GateType.BUF, ["a"])
    nl.set_outputs(["y"])
    return lint_netlist(nl)


def _bad_preflight():
    nl = Netlist("bad", allow_cycles=True)
    nl.add_input("a")
    # undriven fan-in: lint flags this as an error
    nl.add_gate("y", GateType.AND, ["a", "ghost"])
    nl.set_outputs(["y"])
    return lint_netlist(nl)


def _tasks(n=4):
    return [
        RowTask(key=f"row{i}", compute=_square, args=(i,)) for i in range(n)
    ]


class TestRunRows:
    def test_sequential_matches_run_row(self):
        runner = ExperimentRunner("seq")
        outcomes = runner.run_rows(_tasks(), jobs=1)
        assert [o.value for o in outcomes] == [{"value": i * i} for i in range(4)]
        assert runner.rows_computed == 4

    def test_parallel_matches_sequential(self):
        serial = ExperimentRunner("a").run_rows(_tasks(), jobs=1)
        parallel = ExperimentRunner("b").run_rows(_tasks(), jobs=2)
        assert [o.value for o in serial] == [o.value for o in parallel]
        assert [o.status for o in parallel] == [RunStatus.OK] * 4

    def test_jobs_defaults_to_policy(self):
        runner = ExperimentRunner("p", RunPolicy(jobs=2))
        outcomes = runner.run_rows(_tasks(3))
        assert [o.value for o in outcomes] == [{"value": i * i} for i in range(3)]

    def test_worker_errors_become_error_outcomes_in_order(self):
        tasks = [
            RowTask(key=f"r{i}", compute=_fail_odd, args=(i,)) for i in range(4)
        ]
        outcomes = ExperimentRunner("e").run_rows(tasks, jobs=2)
        assert [o.status for o in outcomes] == [
            RunStatus.OK,
            RunStatus.ERROR,
            RunStatus.OK,
            RunStatus.ERROR,
        ]
        assert "odd input 3" in outcomes[3].error

    def test_retries_happen_inside_worker(self):
        tasks = [RowTask(key="r", compute=_fail_odd, args=(1,))]
        runner = ExperimentRunner("retry", RunPolicy(retries=2, jobs=2))
        (outcome,) = runner.run_rows(tasks)
        assert outcome.status is RunStatus.ERROR
        assert outcome.attempts == 3

    def test_budget_enforced_in_worker(self):
        tasks = [RowTask(key="r", compute=_charge_patterns, args=(500,))]
        runner = ExperimentRunner(
            "budget", RunPolicy(max_patterns=100, jobs=2)
        )
        (outcome,) = runner.run_rows(tasks)
        assert outcome.status is RunStatus.BUDGET


class TestParallelCheckpointing:
    def test_checkpoints_written_and_resumed(self, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True, jobs=2)
        first = ExperimentRunner("cp", policy, fingerprint={"v": 1})
        outcomes = first.run_rows(_tasks())
        assert first.rows_computed == 4 and first.rows_reused == 0

        second = ExperimentRunner("cp", policy, fingerprint={"v": 1})
        resumed = second.run_rows(_tasks())
        assert second.rows_reused == 4 and second.rows_computed == 0
        assert [o.value for o in resumed] == [o.value for o in outcomes]
        assert all(o.diagnostics.get("cached") for o in resumed)

    def test_fingerprint_mismatch_recomputes(self, tmp_path):
        policy = RunPolicy(checkpoint_dir=tmp_path, resume=True, jobs=2)
        ExperimentRunner("cp", policy, fingerprint={"v": 1}).run_rows(_tasks(2))
        changed = ExperimentRunner("cp", policy, fingerprint={"v": 2})
        changed.run_rows(_tasks(2))
        assert changed.rows_reused == 0 and changed.rows_computed == 2


class TestParallelPreflight:
    def test_failing_preflight_short_circuits_row(self):
        tasks = [
            RowTask(key="good", compute=_square, args=(2,), preflight=_good_preflight),
            RowTask(key="bad", compute=_square, args=(3,), preflight=_bad_preflight),
        ]
        outcomes = ExperimentRunner("pf").run_rows(tasks, jobs=2)
        assert outcomes[0].status is RunStatus.OK
        assert outcomes[1].status is RunStatus.ERROR
        assert "lint preflight failed" in outcomes[1].error
