"""Tests for the locked scan-test program flow (tested-locked semantics)."""

import pytest

from repro.atpg import (
    apply_test_program,
    build_test_program,
    chip_with_defect,
    collapse_faults,
)
from repro.experiments.attack_matrix import default_design


@pytest.fixture(scope="module")
def design():
    return default_design(seed=7, variant="basic")


@pytest.fixture(scope="module")
def program(design):
    return build_test_program(design, n_random_patterns=256)


class TestProgramGeneration:
    def test_program_nonempty(self, program):
        assert len(program) > 10

    def test_vectors_cover_key_cells(self, design, program):
        """Key-register cells are part of the scan load — the paper's
        'the tool was allowed to set any value to the key inputs'."""
        n_keys = design.lfsr_config.size
        some_key_set = any(
            any(v.load_state.get(f"kr{i}", 0) for i in range(n_keys))
            for v in program.vectors
        )
        assert some_key_set

    def test_expectations_are_locked_circuit_responses(self, design, program):
        """Expected values must come from the locked netlist, not the
        original — published test data is useless as an oracle."""
        core = design.locked.locked
        key_inputs = design.locked.key_inputs
        vec = next(
            v
            for v in program.vectors
            if any(v.load_state.get(f"kr{i}", 0) == 0 for i in range(3))
        )
        assignment = dict(vec.pi_values)
        for i, k in enumerate(key_inputs):
            assignment[k] = vec.load_state.get(f"kr{i}", 0)
        for ff in design.design.flops:
            assignment[ff.q] = vec.load_state.get(ff.name, 0)
        values = core.evaluate(assignment)
        assert vec.expected_po == {
            o: values[o] for o in design.design.primary_outputs
        }


class TestProgramApplication:
    def test_good_chip_passes(self, design, program):
        chip = design.build_chip()
        chip.reset()
        rep = apply_test_program(chip, program)
        assert rep.passed
        assert rep.first_failure is None

    def test_good_chip_passes_even_after_unlock(self, design, program):
        """Testing after field operation: scan entry relocks, responses
        still match the locked expectations (periodic-test support)."""
        chip = design.build_chip()
        chip.reset()
        chip.unlock()
        chip.functional_cycle({p: 1 for p in chip.primary_inputs})
        rep = apply_test_program(chip, program)
        assert rep.passed

    def test_defective_chip_fails(self, design, program):
        faults = [
            f
            for f in collapse_faults(design.locked.locked)
            if f.pin is None
            and not design.locked.locked.gate(f.gate).gtype.is_source
        ]
        detected_any = 0
        for fault in faults[:: max(1, len(faults) // 4)][:4]:
            bad = chip_with_defect(design, fault)
            bad.reset()
            rep = apply_test_program(bad, program)
            if rep.n_failing > 0:
                detected_any += 1
        assert detected_any >= 3  # the program screens real defects

    def test_unprotected_baseline_also_passes(self, design, program):
        """The baseline chip's key register isn't scannable, so the key
        cells of the pattern have no effect — expectations are computed
        with the loaded key values, so the (unlocked) baseline fails the
        locked program instead: the programs are not interchangeable."""
        chip = design.baseline_chip()
        chip.reset()
        chip.unlock()
        rep = apply_test_program(chip, program)
        # the correct key differs from most scanned-in key-cell patterns,
        # so at least one vector must mismatch
        assert not rep.passed
