"""Unit tests for the gate primitives."""

import itertools

import pytest

from repro.netlist import (
    Gate,
    GateType,
    controlled_response,
    controlling_value,
    evaluate_gate,
)


class TestGateType:
    def test_sources_have_no_fanin(self):
        for t in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            assert t.is_source
            assert t.min_fanin == 0
            assert t.max_fanin == 0

    def test_single_input_gates(self):
        for t in (GateType.BUF, GateType.NOT):
            assert t.min_fanin == 1
            assert t.max_fanin == 1

    def test_multi_input_gates_unbounded(self):
        for t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                  GateType.XOR, GateType.XNOR):
            assert t.min_fanin == 2
            assert t.max_fanin is None

    def test_mux_is_three_input(self):
        assert GateType.MUX.min_fanin == 3
        assert GateType.MUX.max_fanin == 3

    def test_inverting_flags(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOR.is_inverting
        assert GateType.XNOR.is_inverting
        assert GateType.NOT.is_inverting
        assert not GateType.AND.is_inverting
        assert not GateType.XOR.is_inverting

    def test_base_types(self):
        assert GateType.NAND.base_type() is GateType.AND
        assert GateType.NOR.base_type() is GateType.OR
        assert GateType.XNOR.base_type() is GateType.XOR
        assert GateType.NOT.base_type() is GateType.BUF
        assert GateType.AND.base_type() is GateType.AND


class TestEvaluateGate:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_and_nand_truth(self, n):
        for bits in itertools.product([0, 1], repeat=n):
            want = int(all(bits))
            assert evaluate_gate(GateType.AND, bits) == want
            assert evaluate_gate(GateType.NAND, bits) == 1 - want

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_or_nor_truth(self, n):
        for bits in itertools.product([0, 1], repeat=n):
            want = int(any(bits))
            assert evaluate_gate(GateType.OR, bits) == want
            assert evaluate_gate(GateType.NOR, bits) == 1 - want

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_xor_xnor_truth(self, n):
        for bits in itertools.product([0, 1], repeat=n):
            want = sum(bits) % 2
            assert evaluate_gate(GateType.XOR, bits) == want
            assert evaluate_gate(GateType.XNOR, bits) == 1 - want

    def test_not_buf(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.NOT, [1]) == 0
        assert evaluate_gate(GateType.BUF, [0]) == 0
        assert evaluate_gate(GateType.BUF, [1]) == 1

    def test_mux(self):
        for s, d0, d1 in itertools.product([0, 1], repeat=3):
            want = d1 if s else d0
            assert evaluate_gate(GateType.MUX, [s, d0, d1]) == want

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, []) == 0
        assert evaluate_gate(GateType.CONST1, []) == 1

    def test_input_has_no_function(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])

    def test_truthy_values_are_normalized(self):
        assert evaluate_gate(GateType.AND, [2, 7]) == 1


class TestControllingValues:
    def test_and_family(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0
        assert controlled_response(GateType.AND) == 0
        assert controlled_response(GateType.NAND) == 1

    def test_or_family(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1
        assert controlled_response(GateType.OR) == 1
        assert controlled_response(GateType.NOR) == 0

    def test_xor_has_none(self):
        assert controlling_value(GateType.XOR) is None
        assert controlled_response(GateType.XNOR) is None


class TestGateDataclass:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.AND, ("a",))
        with pytest.raises(ValueError):
            Gate("g", GateType.NOT, ("a", "b"))
        with pytest.raises(ValueError):
            Gate("g", GateType.MUX, ("a", "b"))
        with pytest.raises(ValueError):
            Gate("g", GateType.INPUT, ("a",))

    def test_fanin_is_tuple(self):
        g = Gate("g", GateType.AND, ["a", "b"])
        assert g.fanin == ("a", "b")

    def test_evaluate_method(self):
        g = Gate("g", GateType.NOR, ("a", "b"))
        assert g.evaluate([0, 0]) == 1
        assert g.evaluate([1, 0]) == 0
