"""Smoke + shape tests for the experiment harnesses (tiny parameters).

These validate the *shape* claims of each paper artifact at miniature
scale; the benchmarks run the same harnesses with realistic parameters.
"""

import pytest

from repro.experiments import (
    format_table,
    paper_reference_payloads,
    print_protocol,
    print_table1,
    print_table2,
    print_trojan_table,
    run_protocol_checks,
    run_table1,
    run_table2,
    run_trojan_table,
)
from repro.experiments.ablations import (
    run_placement_ablation,
    run_tap_ablation,
    run_wll_width_ablation,
    xor_tree_cost,
)


class TestCommon:
    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", True)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "yes" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(
            scale=0.005, circuits=["s38417", "b20"], n_patterns=512, n_keys=4
        )

    def test_row_fields(self, rows):
        assert [r.circuit for r in rows] == ["s38417", "b20"]
        for r in rows:
            assert r.control_inputs == 3
            assert r.lfsr_size >= 9

    def test_hd_in_plausible_band(self, rows):
        """The paper's HD range is ~29-50%; tiny circuits still land in a
        broad useful band."""
        for r in rows:
            assert 15.0 <= r.hd_percent <= 55.0

    def test_overheads_positive(self, rows):
        for r in rows:
            assert r.area_overhead_percent > 0.0
            assert r.delay_overhead_percent >= 0.0

    def test_printing(self, rows):
        text = print_table1(rows)
        assert "Table I" in text
        assert "s38417" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(scale=0.005, circuits=["b20"], n_random_patterns=256)

    def test_shape_fc_improves_or_holds(self, rows):
        r = rows[0]
        assert r.fc_protected >= r.fc_original - 0.5
        assert r.red_abrt_protected <= r.red_abrt_original + 2

    def test_high_coverage(self, rows):
        assert rows[0].fc_original > 90.0

    def test_printing(self, rows):
        assert "Table II" in print_table2(rows)


class TestTrojanTable:
    def test_rows_and_reference(self):
        rows = run_trojan_table(seed=7)
        assert len(rows) == 10  # 5 scenarios x 2 variants
        by = {(r.variant, r.scenario[0]): r for r in rows}
        assert by[("basic", "e")].attack_effective
        assert not by[("modified", "e")].attack_effective
        assert not by[("modified", "d")].attack_effective
        ref = paper_reference_payloads(128)
        assert ref["a (NAND3 swaps)"] == 64.0

    def test_printing(self):
        rows = run_trojan_table(seed=7)
        text = print_trojan_table(rows)
        assert "128-bit" in text


class TestProtocolChecks:
    @pytest.mark.parametrize("variant", ["basic", "modified"])
    def test_all_checks_pass(self, variant):
        checks = run_protocol_checks(variant=variant)
        assert len(checks) == 6
        for c in checks:
            assert c.passed, c.name

    def test_printing(self):
        checks = run_protocol_checks(variant="basic")
        assert "OraP protocol checks" in print_protocol(checks)


class TestAblations:
    def test_tap_density_monotone(self):
        """Denser taps -> bigger XOR trees (the paper's design rationale)."""
        loose, _ = xor_tree_cost(64, 16, 4, 2)
        dense, _ = xor_tree_cost(64, 4, 4, 2)
        assert dense > loose

    def test_lfsr_beats_shift_register(self):
        sr, _ = xor_tree_cost(64, 0, 4, 2)
        lfsr, _ = xor_tree_cost(64, 8, 4, 2)
        assert lfsr > sr

    def test_tap_rows(self):
        rows = run_tap_ablation(size=32)
        assert len(rows) == 16

    def test_wll_width_rows(self):
        rows = run_wll_width_ablation(key_width=12)
        assert [r.control_width for r in rows] == [2, 3, 5]
        for r in rows:
            assert r.hd_percent > 5.0

    def test_placement_rows(self):
        rows = run_placement_ablation(seed=7)
        by = {r.placement: r.n_bypass_muxes for r in rows}
        assert by["interleaved"] > by["clustered"]


class TestScalingStudy:
    def test_rows_and_trend_fields(self):
        from repro.experiments import print_scaling, run_scaling_study

        rows = run_scaling_study(
            circuit="b21", scales=(0.005, 0.02), n_patterns=512
        )
        assert [r.scale for r in rows] == [0.005, 0.02]
        assert rows[1].n_gates > rows[0].n_gates
        for r in rows:
            assert r.hd_percent > 10.0
        text = print_scaling(rows)
        assert "Scaling study" in text


class TestArmsRaceLight:
    def test_row_schema(self):
        from repro.experiments.arms_race import ArmsRaceRow

        r = ArmsRaceRow("s", "a", True, True, False, note="n")
        assert r.scheme == "s" and not r.broken


class TestHDSaturation:
    def test_sweep_and_stopping_rule(self):
        from repro.experiments import (
            print_hd_sweep,
            run_hd_sweep,
            saturation_point,
        )

        points = run_hd_sweep(
            circuit="b21", scale=0.01, gate_counts=(1, 4, 16), n_patterns=512
        )
        assert [p.n_key_gates for p in points] == [1, 4, 16]
        assert points[-1].hd_percent > points[0].hd_percent
        assert saturation_point(points) is not None
        assert "saturation" in print_hd_sweep(points).lower()

    def test_saturation_rule_tolerates_dips(self):
        from repro.experiments import saturation_point
        from repro.experiments.hd_saturation import HDPoint

        def mk(n, hd):
            return HDPoint("c", n, hd, 1.0)
        # one dip then strong growth: must NOT fire at the dip
        pts = [mk(1, 39.0), mk(2, 31.0), mk(4, 45.0), mk(8, 45.2), mk(16, 45.3)]
        stop = saturation_point(pts)
        assert stop is not None and stop.n_key_gates == 16
        # 50% target fires immediately
        pts2 = [mk(1, 30.0), mk(2, 51.0), mk(4, 52.0)]
        assert saturation_point(pts2).n_key_gates == 2
        assert saturation_point([]) is None
