"""Tests for cyclic logic locking and the CycSAT attack."""

import pytest

from repro.attacks import (
    CycSATConfig,
    IdealOracle,
    cycsat_attack,
    no_cycle_clauses,
    sat_attack,
)
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import LockingError, induced_acyclic_netlist, lock_cyclic
from repro.sat import check_equivalence


@pytest.fixture(scope="module")
def circuit():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=12, n_outputs=8, n_gates=90, depth=6, seed=4, name="cy"
        )
    )


@pytest.fixture(scope="module")
def cyclic(circuit):
    return lock_cyclic(circuit, n_feedbacks=6, rng=3)


class TestCyclicLocking:
    def test_locked_netlist_is_structurally_cyclic(self, cyclic):
        assert cyclic.locked.allow_cycles
        plain = cyclic.locked.copy()
        plain.allow_cycles = False
        plain._invalidate()
        from repro.netlist import NetlistError

        with pytest.raises(NetlistError, match="cycle"):
            plain.topological_order()

    def test_correct_key_breaks_all_cycles(self, cyclic):
        ind = induced_acyclic_netlist(
            cyclic.locked, cyclic.correct_key, cyclic.extra["feedback_muxes"]
        )
        assert ind is not None
        eq, _ = check_equivalence(cyclic.original, ind)
        assert eq

    def test_feedback_selecting_key_is_invalid(self, cyclic):
        wrong = dict(cyclic.correct_key)
        wrong[cyclic.key_inputs[0]] ^= 1
        ind = induced_acyclic_netlist(
            cyclic.locked, wrong, cyclic.extra["feedback_muxes"]
        )
        assert ind is None

    def test_mux_bookkeeping(self, cyclic):
        muxes = cyclic.extra["feedback_muxes"]
        assert len(muxes) == 6
        for mux, sel_key, fb_value in muxes:
            g = cyclic.locked.gate(mux)
            assert g.fanin[0] == sel_key
            assert cyclic.correct_key[sel_key] == 1 - fb_value

    def test_too_many_feedbacks_rejected(self, circuit):
        with pytest.raises(LockingError):
            lock_cyclic(circuit, n_feedbacks=10_000, rng=0)


class TestCycSAT:
    def test_plain_sat_attack_not_applicable(self, cyclic):
        """The pre-CycSAT state of the world: the DIP loop cannot even
        encode the cyclic netlist."""
        with pytest.raises(ValueError, match="cyclic"):
            sat_attack(
                cyclic.locked, cyclic.key_inputs, IdealOracle(cyclic.original)
            )

    def test_nc_clauses_cover_every_enumerated_cycle(self, cyclic):
        key_vars = {k: i + 1 for i, k in enumerate(cyclic.key_inputs)}
        clauses = no_cycle_clauses(
            cyclic.locked, cyclic.extra["feedback_muxes"], key_vars
        )
        assert clauses
        assert all(len(c) >= 1 for c in clauses)
        # the correct key satisfies every NC clause
        model = {
            key_vars[k]: bool(v) for k, v in cyclic.correct_key.items()
        }
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    def test_cycsat_recovers_valid_key(self, cyclic):
        res = cycsat_attack(
            cyclic, IdealOracle(cyclic.original), CycSATConfig()
        )
        assert res.completed
        key = {k: res.recovered_key[k] for k in cyclic.key_inputs}
        ind = induced_acyclic_netlist(
            cyclic.locked, key, cyclic.extra["feedback_muxes"]
        )
        assert ind is not None  # NC condition honoured
        eq, _ = check_equivalence(cyclic.original, ind)
        assert eq
