"""Tests for the synthetic generator, paper registry, fixtures, analysis."""

import pytest

from repro.bench import (
    PAPER_CIRCUITS,
    PAPER_ORDER,
    GeneratorConfig,
    SequentialConfig,
    build_paper_circuit,
    equality_checker,
    generate_netlist,
    generate_sequential,
    majority,
    mini_alu,
    parity_tree,
    ripple_adder,
    scaled_key_size,
)
from repro.netlist import (
    critical_path,
    nets_on_critical_paths,
    observability_depths,
    output_cone,
    select_high_impact_nets,
    signal_probabilities,
)
from repro.sim import BitSimulator, popcount_words, random_words


class TestGenerator:
    def test_deterministic(self):
        cfg = GeneratorConfig(n_inputs=10, n_outputs=8, n_gates=80, seed=3, name="d")
        a = generate_netlist(cfg)
        b = generate_netlist(cfg)
        assert a.nets == b.nets
        assert [g.fanin for g in a.gates()] == [g.fanin for g in b.gates()]

    def test_io_counts(self):
        nl = generate_netlist(
            GeneratorConfig(n_inputs=12, n_outputs=9, n_gates=100, seed=1)
        )
        assert len(nl.inputs) == 12
        assert len(nl.outputs) == 9
        nl.validate()

    def test_gate_count_close_to_target(self):
        nl = generate_netlist(
            GeneratorConfig(n_inputs=16, n_outputs=10, n_gates=200, seed=4)
        )
        assert 120 <= nl.num_gates() <= 200  # pruning may trim some

    def test_probability_balance(self):
        """The probability-aware selection keeps nets testable (no drift
        to the rails) — the property behind realistic fault coverage."""
        nl = generate_netlist(
            GeneratorConfig(n_inputs=20, n_outputs=12, n_gates=300, depth=10, seed=5)
        )
        sim = BitSimulator(nl)
        w = random_words(len(nl.inputs), 2048, seed=0)
        vals = sim.run({n: w[i] for i, n in enumerate(nl.inputs)})
        near_rail = 0
        for net in nl.nets:
            p = popcount_words(vals[sim.net_index(net)][None, :]) / 2048
            if p < 0.02 or p > 0.98:
                near_rail += 1
        assert near_rail / len(nl.nets) < 0.05

    def test_config_validation(self):
        with pytest.raises(ValueError):
            generate_netlist(GeneratorConfig(n_inputs=1, n_outputs=1, n_gates=10))
        with pytest.raises(ValueError):
            generate_netlist(GeneratorConfig(n_inputs=4, n_outputs=0, n_gates=10))
        with pytest.raises(ValueError):
            generate_netlist(GeneratorConfig(n_inputs=4, n_outputs=20, n_gates=10))

    def test_sequential_generation(self):
        seq = generate_sequential(
            SequentialConfig(
                comb=GeneratorConfig(n_inputs=8, n_outputs=12, n_gates=90, seed=2),
                n_flops=6,
                n_scan_chains=2,
            )
        )
        assert seq.state_width == 6
        assert len(seq.scan_chains) == 2
        seq.validate()

    def test_sequential_needs_spare_outputs(self):
        with pytest.raises(ValueError):
            generate_sequential(
                SequentialConfig(
                    comb=GeneratorConfig(n_inputs=8, n_outputs=4, n_gates=50, seed=2),
                    n_flops=4,
                )
            )


class TestRegistry:
    def test_all_eight_circuits_present(self):
        assert len(PAPER_ORDER) == 8
        assert set(PAPER_ORDER) == set(PAPER_CIRCUITS)

    def test_published_values_match_table1(self):
        s = PAPER_CIRCUITS["s38417"]
        assert s.gates == 8709
        assert s.lfsr_size == 256
        assert s.hd_percent == 39.45
        b19 = PAPER_CIRCUITS["b19"]
        assert b19.gates == 196855
        assert b19.control_inputs == 5

    def test_published_values_match_table2(self):
        b17 = PAPER_CIRCUITS["b17"]
        assert b17.fc_original == 97.23
        assert b17.red_abrt_original == 2122
        assert b17.fc_protected == 99.08
        assert b17.red_abrt_protected == 717

    def test_build_scaled(self):
        nl = build_paper_circuit("b20", scale=0.01)
        assert nl.num_gates() > 50
        nl.validate()

    def test_unknown_circuit(self):
        with pytest.raises(KeyError):
            build_paper_circuit("c6288")

    def test_scaled_key_size(self):
        assert scaled_key_size("s38417", 1.0) == 256
        small = scaled_key_size("s38417", 0.02)
        assert 12 <= small < 256
        assert scaled_key_size("b18", 0.001) >= 15  # floor: 3*ctrl_inputs=15


class TestFixtures:
    def test_adder_matches_integer_addition(self):
        nl = ripple_adder(4)
        for a in range(16):
            for b in (0, 5, 15):
                asg = {f"a{i}": (a >> i) & 1 for i in range(4)}
                asg.update({f"b{i}": (b >> i) & 1 for i in range(4)})
                asg["cin"] = 0
                out = nl.evaluate_outputs(asg)
                got = sum(out[f"s{i}"] << i for i in range(4)) + (out["c3"] << 4)
                assert got == a + b

    def test_alu_operations(self):
        nl = mini_alu(4)
        a, b = 0b1100, 0b1010
        for op, fn in [
            (0, lambda x, y: x & y),
            (1, lambda x, y: x | y),
            (2, lambda x, y: x ^ y),
            (3, lambda x, y: (x + y) & 0xF),
        ]:
            asg = {f"a{i}": (a >> i) & 1 for i in range(4)}
            asg.update({f"b{i}": (b >> i) & 1 for i in range(4)})
            asg["op0"] = op & 1
            asg["op1"] = (op >> 1) & 1
            out = nl.evaluate_outputs(asg)
            got = sum(out[f"y{i}"] << i for i in range(4))
            assert got == fn(a, b), op

    def test_parity_tree(self):
        nl = parity_tree(8)
        asg = {f"x{i}": i % 2 for i in range(8)}
        assert nl.evaluate_outputs(asg)["parity"] == 0
        asg["x0"] = 1
        assert nl.evaluate_outputs(asg)["parity"] == 1

    def test_majority(self):
        nl = majority(3)
        assert nl.evaluate_outputs({"x0": 1, "x1": 1, "x2": 0})["maj"] == 1
        assert nl.evaluate_outputs({"x0": 1, "x1": 0, "x2": 0})["maj"] == 0

    def test_equality_checker(self):
        nl = equality_checker(4)
        asg = {f"x{i}": 1 for i in range(4)}
        asg.update({f"y{i}": 1 for i in range(4)})
        assert nl.evaluate_outputs(asg)["eq"] == 1
        asg["y2"] = 0
        assert nl.evaluate_outputs(asg)["eq"] == 0


class TestAnalysis:
    def test_signal_probabilities_match_simulation(self):
        """Topological estimates track measured probabilities on a
        fanout-light circuit."""
        nl = ripple_adder(3)
        probs = signal_probabilities(nl)
        sim = BitSimulator(nl)
        w = random_words(len(nl.inputs), 8192, seed=0)
        vals = sim.run({n: w[i] for i, n in enumerate(nl.inputs)})
        for net in nl.nets:
            measured = popcount_words(vals[sim.net_index(net)][None, :]) / 8192
            assert abs(probs[net] - measured) < 0.12, net

    def test_critical_path_is_a_path(self):
        nl = mini_alu(3)
        path = critical_path(nl)
        assert len(path) == nl.depth() + 1
        for a, b in zip(path, path[1:]):
            assert a in nl.gate(b).fanin

    def test_nets_on_critical_paths_superset(self):
        nl = mini_alu(3)
        crit = nets_on_critical_paths(nl)
        assert set(critical_path(nl)) <= crit

    def test_observability_depths(self):
        nl = ripple_adder(2)
        obs = observability_depths(nl)
        for o in nl.outputs:
            assert obs[o] == 0

    def test_output_cone(self):
        nl = ripple_adder(2)
        cone = output_cone(nl, "s0")
        assert "a0" in cone and "b0" in cone
        assert "a1" not in cone

    def test_select_high_impact_excludes(self):
        nl = mini_alu(3)
        picks = select_high_impact_nets(nl, 5, exclude=["y0"])
        assert "y0" not in picks
        assert len(picks) == 5
