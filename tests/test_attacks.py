"""Tests for the attack suite against ideal and scan-level oracles."""

import pytest

from repro.attacks import (
    AppSATConfig,
    BypassConfig,
    CountingOracle,
    HillClimbConfig,
    IdealOracle,
    OracleBudgetExceeded,
    SATAttackConfig,
    ScanOracle,
    appsat_attack,
    bypass_attack,
    doubledip_attack,
    extract_consistent_key,
    hill_climb_attack,
    key_is_correct,
    netlist_is_correct,
    removal_attack,
    sat_attack,
    sensitization_attack,
    sps_attack,
)
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import (
    WLLConfig,
    lock_antisat,
    lock_random,
    lock_sarlock,
    lock_weighted,
)


@pytest.fixture(scope="module")
def circuit():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=14, n_outputs=10, n_gates=110, depth=7, seed=9, name="atk"
        )
    )


@pytest.fixture(scope="module")
def rll(circuit):
    return lock_random(circuit, key_width=8, rng=2)


@pytest.fixture(scope="module")
def wll(circuit):
    return lock_weighted(
        circuit, WLLConfig(key_width=12, control_width=3, n_key_gates=6), rng=2
    )


@pytest.fixture(scope="module")
def sar(circuit):
    return lock_sarlock(circuit, key_width=7, rng=2)


class TestOracles:
    def test_ideal_oracle_counts(self, rll):
        o = IdealOracle(rll.original)
        o.query({i: 0 for i in o.inputs})
        assert o.n_queries == 1

    def test_counting_oracle_budget(self, rll):
        o = CountingOracle(IdealOracle(rll.original), max_queries=2)
        asg = {i: 0 for i in o.inputs}
        o.query(asg)
        o.query(asg)
        with pytest.raises(OracleBudgetExceeded):
            o.query(asg)


class TestSATAttack:
    def test_recovers_rll_key(self, rll):
        res = sat_attack(rll.locked, rll.key_inputs, IdealOracle(rll.original))
        assert res.completed
        assert key_is_correct(rll, res.recovered_key)
        assert res.iterations < 20  # RLL falls in a handful of DIPs

    def test_recovers_wll_key(self, wll):
        res = sat_attack(wll.locked, wll.key_inputs, IdealOracle(wll.original))
        assert res.completed
        assert key_is_correct(wll, res.recovered_key)

    def test_sarlock_needs_exponential_dips(self, sar):
        res = sat_attack(
            sar.locked,
            sar.key_inputs,
            IdealOracle(sar.original),
            SATAttackConfig(max_iterations=20),
        )
        assert not res.completed  # 7-bit SARLock needs ~127 DIPs
        res2 = sat_attack(
            sar.locked,
            sar.key_inputs,
            IdealOracle(sar.original),
            SATAttackConfig(max_iterations=200),
        )
        assert res2.completed
        assert res2.iterations > 100
        assert key_is_correct(sar, res2.recovered_key)

    def test_oracle_query_count_matches_iterations(self, rll):
        o = IdealOracle(rll.original)
        res = sat_attack(rll.locked, rll.key_inputs, o)
        assert res.oracle_queries == res.iterations

    def test_extract_consistent_key_empty_history(self, rll):
        key = extract_consistent_key(rll.locked, rll.key_inputs, [])
        assert key is not None  # any key is consistent with nothing


class TestAppSAT:
    def test_exact_on_rll(self, rll):
        res = appsat_attack(rll.locked, rll.key_inputs, IdealOracle(rll.original))
        assert res.completed
        assert key_is_correct(rll, res.recovered_key)

    def test_approximate_on_sarlock(self, sar):
        """AppSAT terminates early on SARLock with a low-error key."""
        res = appsat_attack(
            sar.locked,
            sar.key_inputs,
            IdealOracle(sar.original),
            AppSATConfig(max_iterations=40, probe_period=4, probe_queries=24,
                         error_threshold=0.05),
        )
        assert res.completed
        assert res.iterations < 40 or res.notes.get("early_exit")
        # approximately correct: at most a few error patterns
        fixed = {k: res.recovered_key[k] for k in sar.key_inputs}
        from repro.sim import functional_match_fraction

        match = functional_match_fraction(
            sar.original, sar.locked, n_patterns=512, inputs_b=fixed
        )
        assert match > 0.97


@pytest.mark.slow
class TestDoubleDIP:
    def test_recovers_rll_key(self, rll):
        res = doubledip_attack(
            rll.locked, rll.key_inputs, IdealOracle(rll.original)
        )
        assert res.completed
        assert key_is_correct(rll, res.recovered_key)

    def test_notes_report_dip_kinds(self, rll):
        res = doubledip_attack(
            rll.locked, rll.key_inputs, IdealOracle(rll.original)
        )
        assert res.notes["two_dips"] + res.notes["one_dips"] == res.iterations


class TestHillClimb:
    def test_recovers_rll_key(self, rll):
        res = hill_climb_attack(
            rll.locked, rll.key_inputs, IdealOracle(rll.original),
            HillClimbConfig(n_patterns=96, restarts=6, seed=1),
        )
        assert res.completed
        assert key_is_correct(rll, res.recovered_key)

    def test_with_precollected_test_set(self, rll):
        import random

        rng = random.Random(0)
        o = IdealOracle(rll.original)
        test_set = []
        for _ in range(96):
            p = {i: rng.randrange(2) for i in rll.data_inputs}
            test_set.append((p, o.query(p)))
        res = hill_climb_attack(
            rll.locked, rll.key_inputs, o, HillClimbConfig(restarts=6, seed=1),
            test_set=test_set,
        )
        assert res.oracle_queries == 0  # used the published responses only
        assert res.completed


@pytest.mark.slow
class TestSensitization:
    def test_recovers_rll_key(self, rll):
        res = sensitization_attack(
            rll.locked, rll.key_inputs, IdealOracle(rll.original)
        )
        assert res.completed
        assert key_is_correct(rll, res.recovered_key)
        assert res.notes["bits_recovered"] == len(rll.key_inputs)


class TestStructuralAttacks:
    def test_sps_breaks_antisat(self, circuit):
        ans = lock_antisat(circuit, half_width=8, rng=2)
        res = sps_attack(ans.locked, ans.key_inputs)
        assert res.completed
        assert netlist_is_correct(ans, res.notes["netlist"])

    def test_sps_finds_nothing_on_wll(self, wll):
        res = sps_attack(wll.locked, wll.key_inputs)
        if res.completed:
            assert not netlist_is_correct(wll, res.notes.get("netlist"))

    def test_removal_breaks_sarlock(self, sar):
        res = removal_attack(sar.locked, sar.key_inputs)
        assert res.completed
        assert netlist_is_correct(sar, res.notes["netlist"])

    def test_removal_breaks_antisat(self, circuit):
        ans = lock_antisat(circuit, half_width=8, rng=2)
        res = removal_attack(ans.locked, ans.key_inputs)
        assert res.completed
        assert netlist_is_correct(ans, res.notes["netlist"])

    def test_removal_fails_on_wll(self, wll):
        """WLL pass values are the rare values: the skew-guided constant is
        wrong and the reconstruction is inverted."""
        res = removal_attack(wll.locked, wll.key_inputs)
        assert res.completed
        assert not netlist_is_correct(wll, res.notes["netlist"])

    def test_bypass_breaks_sarlock(self, sar):
        res = bypass_attack(
            sar.locked, sar.key_inputs, IdealOracle(sar.original),
            BypassConfig(max_error_points=8),
        )
        assert res.completed
        assert netlist_is_correct(sar, res.notes["netlist"])

    def test_bypass_gives_up_on_wll(self, wll):
        res = bypass_attack(
            wll.locked, wll.key_inputs, IdealOracle(wll.original), BypassConfig()
        )
        assert not res.completed
        assert "error rate" in res.notes["reason"]


class TestScanOracleAttacks:
    """The paper's headline: same attack, two chips, opposite outcomes."""

    @pytest.fixture(scope="class")
    def protected(self):
        from repro.bench import SequentialConfig, generate_sequential
        from repro.orap import OraPConfig, protect

        design = generate_sequential(
            SequentialConfig(
                comb=GeneratorConfig(
                    n_inputs=10, n_outputs=14, n_gates=110, depth=6, seed=4,
                    name="soc",
                ),
                n_flops=8,
            )
        )
        return protect(
            design,
            orap=OraPConfig(variant="basic"),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=9,
        )

    def test_sat_attack_beats_conventional_chip(self, protected):
        chip = protected.baseline_chip()
        chip.reset()
        chip.unlock()
        res = sat_attack(
            protected.locked.locked,
            protected.locked.key_inputs,
            ScanOracle(chip),
        )
        assert res.completed
        assert key_is_correct(protected.locked, res.recovered_key)

    def test_sat_attack_thwarted_by_orap(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        res = sat_attack(
            protected.locked.locked,
            protected.locked.key_inputs,
            ScanOracle(chip),
        )
        # the attack completes — but against locked responses, so the
        # recovered key is wrong (Sect. II-A)
        assert res.completed
        assert not key_is_correct(protected.locked, res.recovered_key)

    def test_hillclimb_thwarted_by_orap(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        res = hill_climb_attack(
            protected.locked.locked,
            protected.locked.key_inputs,
            ScanOracle(chip),
            HillClimbConfig(n_patterns=64, restarts=3),
        )
        assert not key_is_correct(protected.locked, res.recovered_key)

    def test_scan_oracle_equals_ideal_on_baseline(self, protected):
        import random

        chip = protected.baseline_chip()
        chip.reset()
        chip.unlock()
        so = ScanOracle(chip)
        io = IdealOracle(protected.locked.original)
        rng = random.Random(5)
        for _ in range(10):
            asg = {i: rng.randrange(2) for i in so.inputs}
            assert so.query(asg) == io.query(asg)
