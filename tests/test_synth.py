"""Tests for the AIG package and the overhead metrics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, c17, generate_netlist, mini_alu, ripple_adder
from repro.netlist import GateType, Netlist
from repro.orap import LFSRConfig
from repro.synth import (
    AIG,
    FALSE_LIT,
    TRUE_LIT,
    aig_to_netlist,
    lit_not,
    measure_overhead,
    netlist_to_aig,
    optimize,
    refactor,
    resynthesized_area_depth,
    rewrite,
    strash,
)


class TestAIGPrimitives:
    def test_constant_folding(self):
        aig = AIG()
        a = aig.add_pi("a")
        assert aig.add_and(a, FALSE_LIT) == FALSE_LIT
        assert aig.add_and(a, TRUE_LIT) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == FALSE_LIT

    def test_structural_hashing(self):
        aig = AIG()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(b, a)  # commuted
        assert n1 == n2
        assert aig.area() == 0  # nothing reaches an output yet
        aig.add_output(n1, "y")
        assert aig.area() == 1

    def test_or_xor_mux_semantics(self):
        aig = AIG()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        s = aig.add_pi("s")
        aig.add_output(aig.add_or(a, b), "or_")
        aig.add_output(aig.add_xor(a, b), "xor_")
        aig.add_output(aig.add_mux(s, a, b), "mux_")
        for va in (0, 1):
            for vb in (0, 1):
                for vs in (0, 1):
                    out = aig.evaluate({"a": va, "b": vb, "s": vs})
                    assert out["or_"] == (va | vb)
                    assert out["xor_"] == (va ^ vb)
                    assert out["mux_"] == (vb if vs else va)

    def test_multi_and_balanced(self):
        aig = AIG()
        lits = [aig.add_pi(f"x{i}") for i in range(5)]
        out = aig.add_and_multi(lits)
        aig.add_output(out, "y")
        assert aig.depth() == 3  # ceil(log2(5))

    def test_empty_multi_ops(self):
        aig = AIG()
        assert aig.add_and_multi([]) == TRUE_LIT
        assert aig.add_xor_multi([]) == FALSE_LIT

    def test_pis_before_ands_enforced(self):
        aig = AIG()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        aig.add_and(a, b)
        with pytest.raises(ValueError):
            aig.add_pi("late")


def _equiv_check(nl: Netlist, aig: AIG, n: int = 200, seed: int = 0) -> None:
    rng = random.Random(seed)
    for _ in range(n):
        asg = {i: rng.randrange(2) for i in nl.inputs}
        assert aig.evaluate(asg) == nl.evaluate_outputs(asg)


class TestConversion:
    @pytest.mark.parametrize(
        "maker", [c17, lambda: ripple_adder(4), lambda: mini_alu(3)]
    )
    def test_netlist_to_aig_equivalent(self, maker):
        nl = maker()
        _equiv_check(nl, netlist_to_aig(nl))

    def test_constants_and_buffers(self):
        nl = Netlist("cb")
        nl.add_input("a")
        nl.add_gate("one", GateType.CONST1)
        nl.add_gate("buf", GateType.BUF, ["a"])
        nl.add_gate("y", GateType.AND, ["one", "buf"])
        nl.set_outputs(["y"])
        aig = netlist_to_aig(nl)
        _equiv_check(nl, aig, n=4)
        assert aig.area() == 0  # AND with const folds away

    def test_roundtrip_to_netlist(self):
        nl = ripple_adder(3)
        back = aig_to_netlist(netlist_to_aig(nl), name="rt")
        rng = random.Random(1)
        for _ in range(100):
            asg = {i: rng.randrange(2) for i in nl.inputs}
            got = back.evaluate_outputs(asg)
            want = nl.evaluate_outputs(asg)
            assert got == want


class TestPasses:
    @given(st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_optimize_preserves_function(self, seed):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=8, n_outputs=6, n_gates=60, depth=5, seed=seed, name="p"
            )
        )
        aig = netlist_to_aig(nl)
        opt = optimize(aig, rounds=2)
        _equiv_check(nl, opt, n=150, seed=seed)

    @pytest.mark.parametrize("pass_fn", [strash, rewrite, refactor])
    def test_each_pass_preserves_function(self, pass_fn):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=90, depth=6, seed=77, name="pp"
            )
        )
        aig = netlist_to_aig(nl)
        out = pass_fn(aig)
        _equiv_check(nl, out, n=150)

    def test_rewrite_absorption(self):
        # a & (a & b) should fold to a & b
        aig = AIG()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        inner = aig.add_and(a, b)
        outer = aig.add_and(a, inner)
        aig.add_output(outer, "y")
        opt = rewrite(aig)
        assert opt.area() <= 1 + 1  # may keep inner only
        _dummy = opt.evaluate({"a": 1, "b": 1})
        assert _dummy["y"] == 1

    def test_optimize_never_increases_area(self):
        for seed in range(4):
            nl = generate_netlist(
                GeneratorConfig(
                    n_inputs=10, n_outputs=8, n_gates=90, depth=6, seed=seed,
                    name="na",
                )
            )
            aig = netlist_to_aig(nl)
            opt = optimize(aig)
            assert opt.area() <= aig.area()


class TestOverheadMetrics:
    def test_identical_circuits_zero_overhead(self):
        nl = ripple_adder(4)
        rep = measure_overhead(nl, nl.copy())
        assert rep.area_overhead_percent == 0.0
        assert rep.delay_overhead_percent == 0.0

    def test_locked_circuit_positive_area(self):
        from repro.locking import WLLConfig, lock_weighted

        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=12, n_outputs=10, n_gates=120, depth=7, seed=5, name="ov"
            )
        )
        lc = lock_weighted(
            nl, WLLConfig(key_width=9, control_width=3, n_key_gates=4), rng=1
        )
        rep = measure_overhead(lc.original, lc.locked)
        assert rep.area_overhead_percent > 0.0

    def test_orap_fixed_gates_added(self):
        nl = ripple_adder(4)
        cfg = LFSRConfig(size=8, taps=(4,), reseed_points=tuple(range(8)))
        rep = measure_overhead(nl, nl.copy(), lfsr_config=cfg)
        # 8 pulse gens x 4 + 8 reseed XORs + 1 tap XOR = 41 gates
        assert rep.orap_fixed_gates == 41
        assert rep.area_protected == rep.area_original + 41

    def test_resynthesized_area_depth(self):
        area, depth = resynthesized_area_depth(c17())
        assert area > 0 and depth > 0
