"""Tests for the locking schemes (RLL, FLL, WLL, SARLock, Anti-SAT, TTLock)."""

import itertools
import random

import pytest

from repro.bench import GeneratorConfig, c17, generate_netlist, mini_alu
from repro.locking import (
    LockingError,
    WLLConfig,
    insert_key_gate,
    lock_antisat,
    lock_fault_analysis,
    lock_random,
    lock_sarlock,
    lock_ttlock,
    lock_weighted,
    make_key_inputs,
    rank_nets_by_fault_impact,
)
from repro.netlist import GateType, Netlist
from repro.sat import prove_unlocks
from repro.sim import functional_match_fraction, measure_corruption


@pytest.fixture(scope="module")
def medium():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=14, n_outputs=10, n_gates=120, depth=7, seed=8, name="m"
        )
    )


class TestBaseHelpers:
    def test_make_key_inputs_avoids_collisions(self):
        nl = Netlist()
        nl.add_input("keyinput0")
        names = make_key_inputs(nl, 2)
        assert len(set(names)) == 2
        assert "keyinput0" not in names

    def test_insert_key_gate_preserves_function_with_pass_value(self):
        nl = c17()
        nl.add_input("k")
        insert_key_gate(nl, "G22", "k", inverted=False, tag="t")
        orig = c17()
        assert functional_match_fraction(
            orig, nl, n_patterns=64, inputs_b={"k": 0}
        ) == 1.0
        assert functional_match_fraction(
            orig, nl, n_patterns=64, inputs_b={"k": 1}
        ) < 1.0

    def test_insert_key_gate_rejects_inputs(self):
        nl = c17()
        nl.add_input("k")
        with pytest.raises(LockingError):
            insert_key_gate(nl, "G1", "k", inverted=False, tag="t")

    def test_locked_circuit_utilities(self):
        lc = lock_random(c17(), key_width=3, rng=0)
        assert lc.key_width == 3
        assert set(lc.data_inputs) == set(c17().inputs)
        assert len(lc.key_vector()) == 3
        as_int = lc.key_as_int()
        assert 0 <= as_int < 8
        wrong = lc.random_wrong_key(rng=1)
        assert tuple(wrong[k] for k in lc.key_inputs) != lc.key_vector()

    def test_apply_key_hardwires(self):
        lc = lock_random(c17(), key_width=3, rng=0)
        keyed = lc.apply_key(lc.correct_key)
        assert functional_match_fraction(lc.original, keyed, n_patterns=64) == 1.0
        keyed_seq = lc.apply_key(list(lc.key_vector()))
        assert functional_match_fraction(lc.original, keyed_seq, n_patterns=64) == 1.0

    def test_apply_key_length_mismatch(self):
        lc = lock_random(c17(), key_width=3, rng=0)
        with pytest.raises(LockingError):
            lc.apply_key([0, 1])


class TestRLLAndFLL:
    @pytest.mark.parametrize("locker", [lock_random, lock_fault_analysis])
    def test_correct_key_unlocks(self, locker, medium):
        lc = locker(medium, key_width=6, rng=3)
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    @pytest.mark.parametrize("locker", [lock_random, lock_fault_analysis])
    def test_wrong_key_corrupts(self, locker, medium):
        lc = locker(medium, key_width=6, rng=3)
        wrong = lc.random_wrong_key(rng=0)
        match = functional_match_fraction(
            lc.original, lc.locked, n_patterns=512, inputs_b=wrong
        )
        assert match < 1.0

    def test_rll_too_many_keys_rejected(self):
        with pytest.raises(LockingError):
            lock_random(c17(), key_width=100)

    def test_fll_targets_have_high_impact(self, medium):
        ranking = rank_nets_by_fault_impact(medium, n_patterns=256)
        scores = dict(ranking)
        lc = lock_fault_analysis(medium, key_width=4, rng=0, n_patterns=256)
        targets = lc.extra["targets"]
        # chosen targets are the ranking's top entries
        top = [n for n, _ in ranking[:4]]
        assert set(targets) == set(top)
        worst_chosen = min(scores[t] for t in targets)
        median_all = sorted(scores.values())[len(scores) // 2]
        assert worst_chosen >= median_all

    def test_ranking_sampling_cap(self, medium):
        ranking = rank_nets_by_fault_impact(
            medium, n_patterns=128, max_candidates=10
        )
        assert len(ranking) == 10


class TestWLL:
    def test_correct_key_unlocks(self, medium):
        lc = lock_weighted(
            medium, WLLConfig(key_width=12, control_width=3, n_key_gates=5), rng=1
        )
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    def test_high_actuation_probability(self, medium):
        """Each weighted key gate flips with prob ~1-2^-w under wrong keys:
        HD should be much higher than a comparable single-bit RLL."""
        wll = lock_weighted(
            medium, WLLConfig(key_width=12, control_width=3, n_key_gates=6), rng=1
        )
        rep = measure_corruption(
            wll.locked, wll.key_inputs, wll.correct_key, n_patterns=1024, n_keys=8
        )
        assert rep.hd_percent > 10.0
        assert rep.corrupted_pattern_fraction > 0.9

    def test_control_gate_structure(self, medium):
        cfg = WLLConfig(key_width=12, control_width=3, n_key_gates=4)
        lc = lock_weighted(medium, cfg, rng=2)
        for ctrl in lc.extra["control_gates"]:
            g = lc.locked.gate(ctrl)
            assert g.gtype in (GateType.AND, GateType.NAND)
            assert len(g.fanin) == 3

    def test_key_gate_flavour_matches_control(self, medium):
        cfg = WLLConfig(key_width=9, control_width=3, n_key_gates=3)
        lc = lock_weighted(medium, cfg, rng=2)
        for target, ctrl in zip(lc.extra["targets"], lc.extra["control_gates"]):
            kg = lc.locked.gate(target)
            cg = lc.locked.gate(ctrl)
            if cg.gtype is GateType.AND:
                assert kg.gtype is GateType.XNOR
            else:
                assert kg.gtype is GateType.XOR

    def test_exclude_nets_respected(self, medium):
        exclude = set(medium.nets[: len(medium.nets) // 2])
        lc = lock_weighted(
            medium,
            WLLConfig(key_width=6, control_width=3, n_key_gates=2),
            rng=1,
            exclude_nets=exclude,
        )
        assert not (set(lc.extra["targets"]) & exclude)

    def test_correct_key_is_random_not_all_ones(self):
        # over several seeds the correct keys must differ (inversion mask)
        keys = set()
        nl = generate_netlist(
            GeneratorConfig(n_inputs=10, n_outputs=8, n_gates=60, depth=5, seed=1, name="k")
        )
        for seed in range(6):
            lc = lock_weighted(
                nl, WLLConfig(key_width=6, control_width=3, n_key_gates=2), rng=seed
            )
            keys.add(lc.key_vector())
        assert len(keys) > 2

    def test_config_validation(self, medium):
        with pytest.raises(LockingError):
            lock_weighted(medium, WLLConfig(key_width=4, control_width=1))
        with pytest.raises(LockingError):
            lock_weighted(medium, WLLConfig(key_width=2, control_width=3))
        with pytest.raises(LockingError):
            lock_weighted(
                medium,
                WLLConfig(key_width=6, control_width=3, target_strategy="nope"),
            )


class TestSARLock:
    def test_correct_key_unlocks(self):
        lc = lock_sarlock(mini_alu(2), key_width=5, rng=4)
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    def test_wrong_key_errs_on_exactly_one_compared_pattern(self):
        nl = c17()
        lc = lock_sarlock(nl, key_width=5, rng=4)
        wrong = lc.random_wrong_key(rng=0)
        n_bad = 0
        for bits in itertools.product([0, 1], repeat=5):
            asg = dict(zip(lc.data_inputs, bits))
            want = lc.original.evaluate_outputs(asg)
            got = lc.locked.evaluate_outputs({**asg, **wrong})
            if want != got:
                n_bad += 1
        assert n_bad == 1  # the SAT-resistance property

    def test_key_width_bounds(self):
        with pytest.raises(LockingError):
            lock_sarlock(c17(), key_width=10)


class TestAntiSAT:
    def test_correct_key_unlocks(self):
        lc = lock_antisat(c17(), half_width=4, rng=2)
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    def test_any_equal_halves_unlock(self):
        """Anti-SAT's key space: every K1 == K2 is a correct key."""
        lc = lock_antisat(c17(), half_width=3, rng=2)
        rng = random.Random(0)
        shared = [rng.randrange(2) for _ in range(3)]
        key = {}
        for i, b in enumerate(shared):
            key[lc.key_inputs[i]] = b
            key[lc.key_inputs[3 + i]] = b
        assert prove_unlocks(lc.original, lc.locked, key)

    def test_unequal_halves_corrupt_somewhere(self):
        lc = lock_antisat(c17(), half_width=3, rng=2)
        key = {k: 0 for k in lc.key_inputs}
        key[lc.key_inputs[0]] = 1  # K1 != K2
        assert not prove_unlocks(lc.original, lc.locked, key)

    def test_low_corruptibility(self):
        """Anti-SAT corrupts very few patterns — the weakness the paper
        contrasts OraP+WLL against."""
        nl = generate_netlist(
            GeneratorConfig(n_inputs=12, n_outputs=8, n_gates=80, depth=6, seed=2, name="a")
        )
        lc = lock_antisat(nl, half_width=10, rng=1)
        rep = measure_corruption(
            lc.locked, lc.key_inputs, lc.correct_key, n_patterns=2048, n_keys=8
        )
        assert rep.hd_percent < 1.0


class TestTTLock:
    def test_correct_key_unlocks(self):
        lc = lock_ttlock(c17(), key_width=5, rng=3)
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    def test_wrong_key_errs_on_two_cubes(self):
        """TTLock: a wrong key leaves the strip flip at the secret cube and
        adds a restore flip at the guessed cube — exactly 2 bad patterns."""
        lc = lock_ttlock(c17(), key_width=5, rng=3)
        wrong = lc.random_wrong_key(rng=1)
        n_bad = 0
        for bits in itertools.product([0, 1], repeat=5):
            asg = dict(zip(lc.data_inputs, bits))
            want = lc.original.evaluate_outputs(asg)
            got = lc.locked.evaluate_outputs({**asg, **wrong})
            if want != got:
                n_bad += 1
        assert n_bad == 2

    def test_sfll_hd_unlocks(self):
        lc = lock_ttlock(c17(), key_width=5, rng=3, hd=2)
        assert prove_unlocks(lc.original, lc.locked, lc.correct_key)

    def test_sfll_hd_parameter_validation(self):
        with pytest.raises(LockingError):
            lock_ttlock(c17(), key_width=4, hd=5)
