"""File-level I/O round trips (BENCH, Verilog, DIMACS)."""

from repro.bench import c17, s27_like
from repro.netlist import load_bench, save_bench, save_verilog
from repro.sat import CNF
from repro.sim import circuits_equal_on_patterns


class TestBenchFiles:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "c17.bench"
        save_bench(c17(), path)
        back = load_bench(path)
        assert not back.flops
        assert circuits_equal_on_patterns(c17(), back.core, n_patterns=64)

    def test_sequential_save_load(self, tmp_path):
        path = tmp_path / "s27.bench"
        seq = s27_like()
        save_bench(seq, path)
        back = load_bench(path)
        assert len(back.flops) == 3
        st1, po1 = seq.next_state(
            seq.reset_state(), {"G0": 1, "G1": 0, "G2": 1, "G3": 0}
        )
        # flop names differ across the roundtrip; compare by Q nets
        st2, po2 = back.next_state(
            back.reset_state(), {"G0": 1, "G1": 0, "G2": 1, "G3": 0}
        )
        assert po1 == po2

    def test_load_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "mycircuit.bench"
        save_bench(c17(), path)
        back = load_bench(path)
        assert back.name == "mycircuit"


class TestVerilogFiles:
    def test_save(self, tmp_path):
        path = tmp_path / "c17.v"
        save_verilog(c17(), path)
        text = path.read_text()
        assert "module c17" in text


class TestDimacsFiles:
    def test_save_load(self, tmp_path):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([3])
        path = tmp_path / "f.cnf"
        cnf.save_dimacs(path)
        back = CNF.load_dimacs(path)
        assert back.clauses == cnf.clauses
        assert back.n_vars == 3
