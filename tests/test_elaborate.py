"""Tests for the structural elaboration of the unlock machinery."""

import random

import pytest

from repro.experiments.attack_matrix import default_design
from repro.orap import (
    elaborate_unlock_logic,
    elaborated_key_bits,
    run_elaborated,
)


@pytest.fixture(scope="module", params=["basic", "modified"])
def elaborated(request):
    d = default_design(seed=7, variant=request.param)
    circuit, report = elaborate_unlock_logic(d)
    return d, circuit, report


class TestElaboration:
    def test_structure_is_valid_and_scannable(self, elaborated):
        d, circuit, report = elaborated
        circuit.validate()
        assert report.total_new_gates > 0
        assert report.rom_minterms == d.key_sequence.schedule.n_seed_cycles
        # flop inventory: design flops + counter + LFSR cells
        names = set(circuit.flop_names)
        assert {f"lfsr{i}" for i in range(d.lfsr_config.size)} <= names
        assert any(n.startswith("cnt") for n in names)

    def test_unlock_reaches_correct_key(self, elaborated):
        d, circuit, _ = elaborated
        T = d.key_sequence.schedule.n_cycles
        state = run_elaborated(circuit, d, T)
        assert elaborated_key_bits(state, d) == list(d.locked.key_vector())

    def test_key_wrong_before_final_cycle(self, elaborated):
        d, circuit, _ = elaborated
        T = d.key_sequence.schedule.n_cycles
        state = run_elaborated(circuit, d, T - 1)
        assert elaborated_key_bits(state, d) != list(d.locked.key_vector())

    def test_key_holds_after_unlock(self, elaborated):
        """The shift-enable decode freezes the LFSR at the key."""
        d, circuit, _ = elaborated
        T = d.key_sequence.schedule.n_cycles
        state = run_elaborated(circuit, d, T + 7)
        assert elaborated_key_bits(state, d) == list(d.locked.key_vector())

    def test_cycle_accurate_match_with_behavioural_chip(self, elaborated):
        d, circuit, _ = elaborated
        T = d.key_sequence.schedule.n_cycles
        state = run_elaborated(circuit, d, T)
        chip = d.build_chip()
        chip.reset()
        chip.unlock()
        # LFSR state matches
        assert elaborated_key_bits(state, d) == chip.key_register.key_bits()
        # design-flop state matches
        for ff in d.design.flops:
            assert state[ff.name] == chip.ff_state[ff.name]
        # and post-unlock functional behaviour matches
        rng = random.Random(3)
        for _ in range(8):
            pi = {p: rng.randrange(2) for p in chip.primary_inputs}
            po_chip = chip.functional_cycle(pi)
            full_pi = {p: pi.get(p, 0) for p in circuit.primary_inputs}
            state, po_elab = circuit.next_state(state, full_pi)
            for o in chip.primary_outputs:
                assert po_elab[o] == po_chip[o]

    def test_elaborated_design_exports_to_verilog(self, elaborated):
        _, circuit, _ = elaborated
        from repro.netlist import write_verilog

        text = write_verilog(circuit)
        assert "module" in text and "endmodule" in text
        assert "lfsr_d0" in text or "\\lfsr_d0" in text
