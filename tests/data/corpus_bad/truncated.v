// file ends before endmodule
module trunc (a, b, y);
  input a, b;
  output y;
  wire n1;
  nand g1 (n1, a, b);
  not g2 (y, n1);
