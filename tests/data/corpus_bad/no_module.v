// a Verilog file with no module declaration at all
wire n1;
nand g1 (n1, a, b);
