// an unparseable statement inside an otherwise good module
module bad (a, b, y);
  input a, b;
  output y;
  wire n1;
  frobnicate q9 (n1, a, b);
  not g2 (y, n1);
endmodule
