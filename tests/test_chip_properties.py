"""Property-based protocol tests: random operation interleavings on the
chip must always satisfy the OraP invariants.

A reference shadow model tracks what the key register *should* contain
given the operations performed; hypothesis drives randomized sequences of
scan entries/exits, shifts, captures, functional cycles, resets and
unlocks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, protect

_DESIGN_CACHE = {}


def _design(variant: str):
    if variant not in _DESIGN_CACHE:
        seq = generate_sequential(
            SequentialConfig(
                comb=GeneratorConfig(
                    n_inputs=8, n_outputs=12, n_gates=80, depth=5, seed=33,
                    name="prop",
                ),
                n_flops=6,
            )
        )
        _DESIGN_CACHE[variant] = protect(
            seq,
            orap=OraPConfig(variant=variant),
            wll=WLLConfig(key_width=6, control_width=3, n_key_gates=2),
            rng=8,
        )
    return _DESIGN_CACHE[variant]


OPS = ("enter_scan", "leave_scan", "shift", "capture", "functional",
       "reset", "unlock")


@given(
    variant=st.sampled_from(["basic", "modified"]),
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=25),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_protocol_invariants_under_random_interleavings(variant, ops, seed):
    d = _design(variant)
    chip = d.build_chip()
    chip.reset()
    rng = random.Random(seed)
    unlocked_expected = False  # does the register hold the correct key?
    shifted_since_clear = False  # random shifts can form any register value

    for op in ops:
        if op == "enter_scan":
            was_functional = chip.scan_enable == 0
            chip.enter_scan_mode()
            if was_functional:
                unlocked_expected = False  # pulse cleared the register
                shifted_since_clear = False
        elif op == "leave_scan":
            chip.leave_scan_mode()
        elif op == "shift":
            if chip.scan_enable == 1:
                chip.scan_shift_cycle(
                    {i: rng.randrange(2) for i in range(len(chip.chains))}
                )
                unlocked_expected = False  # shifting disturbs the key cells
                shifted_since_clear = True
        elif op == "capture":
            if chip.scan_enable == 1:
                chip.scan_capture(
                    {p: rng.randrange(2) for p in chip.primary_inputs}
                )
        elif op == "functional":
            if chip.scan_enable == 0:
                chip.functional_cycle(
                    {p: rng.randrange(2) for p in chip.primary_inputs}
                )
        elif op == "reset":
            chip.reset()
            unlocked_expected = False
            shifted_since_clear = False
        elif op == "unlock":
            if chip.scan_enable == 0:
                chip.reset()
                chip.unlock()
                unlocked_expected = True
                shifted_since_clear = False

        # INVARIANT 1: the chip is unlocked exactly when the model says so
        # (random scan shifts CAN recreate the correct key by chance on a
        # narrow register — the brute-force channel, excluded here)
        if unlocked_expected or not shifted_since_clear:
            assert chip.is_unlocked() == unlocked_expected

        # INVARIANT 2: right after scan entry (before any shifting), the
        # key register is all-zero — the pulse generators fired
        if chip.scan_enable == 1 and not shifted_since_clear:
            assert chip.key_register.key_bits() == [0] * d.lfsr_config.size

    # INVARIANT 3: a clean reset+unlock always recovers from any history
    if chip.scan_enable == 1:
        chip.leave_scan_mode()
    chip.reset()
    chip.unlock()
    assert chip.is_unlocked()
