"""The unified attack registry and config-unification shims."""

from __future__ import annotations

import dataclasses

import pytest

from repro.attacks import (
    AttackConfig,
    AttackResult,
    HillClimbConfig,
    IdealOracle,
    SATAttackConfig,
    SensitizationConfig,
    get_attack,
    list_attacks,
    run_attack,
)
from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import WLLConfig, lock_cyclic, lock_weighted
from repro.runtime.budget import Budget
from repro.sim.metrics import measure_corruption


@pytest.fixture(scope="module")
def host():
    return generate_netlist(
        GeneratorConfig(
            n_inputs=8, n_outputs=6, n_gates=60, depth=5, seed=11, name="api"
        )
    )


@pytest.fixture(scope="module")
def wll(host):
    return lock_weighted(
        host, WLLConfig(key_width=6, control_width=3, n_key_gates=2), rng=3
    )


@pytest.fixture(scope="module")
def cyclic(host):
    return lock_cyclic(host, n_feedbacks=3, rng=3)


class TestRegistry:
    def test_the_eight_headline_attacks_are_registered(self):
        names = set(list_attacks())
        assert {
            "sat",
            "appsat",
            "doubledip",
            "hillclimb",
            "sensitization",
            "fall",
            "sps",
            "cycsat",
        } <= names

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="sat"):
            run_attack("nope", None)

    def test_specs_carry_config_types(self):
        assert get_attack("sat").config_type is SATAttackConfig
        assert get_attack("fall").config_type is None
        assert get_attack("cycsat").requires == ("feedback_muxes",)

    def test_round_trip_every_registered_attack(self, wll, cyclic):
        """Every registry entry runs end-to-end and returns a well-formed
        AttackResult on a small locked netlist."""
        for name in list_attacks():
            spec = get_attack(name)
            target = cyclic if "feedback_muxes" in spec.requires else wll
            oracle = IdealOracle(target.original) if spec.needs_oracle else None
            result = run_attack(name, target, oracle)
            assert isinstance(result, AttackResult), name
            assert result.attack == name
            assert isinstance(result.completed, bool)
            assert result.iterations >= 0
            assert result.oracle_queries >= 0
            assert result.status in ("ok", "timeout", "budget", "error")

    def test_sat_recovers_correct_key_via_registry(self, wll):
        result = run_attack("sat", wll, IdealOracle(wll.original))
        assert result.completed
        assert result.recovered_key == wll.correct_key

    def test_bare_netlist_needs_key_inputs(self, wll):
        with pytest.raises(TypeError, match="key_inputs"):
            run_attack("sps", wll.locked)
        result = run_attack("sps", wll.locked, key_inputs=wll.key_inputs)
        assert result.attack == "sps"

    def test_cycsat_demands_locked_circuit_metadata(self, wll):
        with pytest.raises(ValueError, match="feedback_muxes"):
            run_attack("cycsat", wll, IdealOracle(wll.original))

    def test_oracle_required_when_spec_says_so(self, wll):
        with pytest.raises(TypeError, match="oracle"):
            run_attack("sat", wll)

    def test_config_type_is_enforced(self, wll):
        with pytest.raises(TypeError, match="SATAttackConfig"):
            run_attack(
                "sat", wll, IdealOracle(wll.original), config=HillClimbConfig()
            )

    def test_budget_threads_into_config(self, wll):
        budget = Budget(wall_s=60.0)
        result = run_attack(
            "sat",
            wll,
            IdealOracle(wll.original),
            config=SATAttackConfig(max_iterations=64),
            budget=budget,
        )
        assert result.completed

    def test_budget_rejected_for_configless_attacks(self, wll):
        with pytest.raises(TypeError, match="budget"):
            run_attack("fall", wll, budget=Budget(wall_s=1.0))


class TestConfigUnification:
    def test_shared_base_fields(self):
        for cls in (SATAttackConfig, HillClimbConfig, SensitizationConfig):
            assert issubclass(cls, AttackConfig)
            fields = {f.name for f in dataclasses.fields(cls)}
            assert {"max_iterations", "seed", "budget"} <= fields

    def test_with_budget_copies(self):
        cfg = SATAttackConfig(max_iterations=5)
        budget = Budget(wall_s=1.0)
        out = cfg.with_budget(budget)
        assert out is not cfg and out.budget is budget
        assert out.max_iterations == 5
        assert cfg.budget is None  # original untouched
        assert cfg.with_budget(None) is cfg

    def test_hillclimb_max_flips_removed(self):
        # the pre-v1 shim completed its deprecation cycle: the legacy
        # spelling is gone from the frozen surface, not silently aliased
        with pytest.raises(TypeError, match="max_flips"):
            HillClimbConfig(max_flips=99)
        assert not hasattr(HillClimbConfig(max_iterations=99), "max_flips")

    def test_sensitization_max_rounds_removed(self):
        with pytest.raises(TypeError, match="max_rounds"):
            SensitizationConfig(max_rounds=2)
        assert not hasattr(SensitizationConfig(max_iterations=2), "max_rounds")

    def test_deprecated_kwargs_machinery_still_guards_v1(self):
        # the *mechanism* stays for future renames of the frozen surface
        from repro.attacks.config import AttackConfig, deprecated_kwargs

        @deprecated_kwargs(old_name="max_iterations")
        @dataclasses.dataclass
        class FutureConfig(AttackConfig):
            pass

        with pytest.warns(DeprecationWarning, match="old_name"):
            cfg = FutureConfig(old_name=3)
        assert cfg.max_iterations == 3
        with pytest.raises(TypeError, match="old_name"):
            FutureConfig(old_name=1, max_iterations=2)


class TestCorruptionBackendKeyword:
    def _measure(self, wll, backend, **kw):
        return measure_corruption(
            wll.locked,
            list(wll.key_inputs),
            wll.correct_key,
            n_patterns=200,
            n_keys=4,
            seed=1,
            backend=backend,
            **kw,
        )

    def test_auto_equals_batched(self, wll):
        assert self._measure(wll, "auto") == self._measure(wll, "batched")

    def test_legacy_optape_spelling_removed(self, wll):
        with pytest.raises(ValueError, match="optape"):
            self._measure(wll, "optape")

    def test_unknown_backend_rejected(self, wll):
        with pytest.raises(ValueError, match="vectorized"):
            self._measure(wll, "vectorized")
