"""Tests for bit-parallel simulation, patterns, and corruption metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import GeneratorConfig, c17, generate_netlist, ripple_adder
from repro.netlist import GateType, Netlist
from repro.sim import (
    BitSimulator,
    assignment_to_int,
    broadcast_constant,
    exhaustive_words,
    functional_match_fraction,
    hamming_distance_words,
    int_to_assignment,
    measure_corruption,
    n_words,
    pack_patterns,
    popcount_words,
    random_words,
    simulate_many,
    tail_mask,
    unpack_patterns,
    weighted_words,
)


class TestPacking:
    def test_n_words(self):
        assert n_words(1) == 1
        assert n_words(64) == 1
        assert n_words(65) == 2

    def test_tail_mask(self):
        assert tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert tail_mask(3) == np.uint64(0b111)

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=3, max_size=3),
            min_size=1,
            max_size=130,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip(self, rows):
        bits = np.array(rows, dtype=np.uint8)
        words = pack_patterns(bits)
        back = unpack_patterns(words, bits.shape[0])
        assert (back == bits).all()

    def test_popcount(self):
        w = np.array([np.uint64(0b1011), np.uint64(0)], dtype=np.uint64)
        assert popcount_words(w) == 3

    def test_pack_requires_2d(self):
        with pytest.raises(ValueError):
            pack_patterns(np.zeros(4, dtype=np.uint8))


class TestBitSimulator:
    def test_matches_reference_on_c17_exhaustive(self):
        nl = c17()
        words = exhaustive_words(5)
        sim = BitSimulator(nl)
        out = sim.run_outputs({name: words[i] for i, name in enumerate(nl.inputs)})
        rows = unpack_patterns(out, 32)
        for v in range(32):
            asg = int_to_assignment(v, nl.inputs)
            want = nl.evaluate_outputs(asg)
            got = {o: int(rows[v][j]) for j, o in enumerate(nl.outputs)}
            assert got == want, v

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_on_random_circuits(self, seed):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=80, depth=6, seed=seed, name="r"
            )
        )
        import random

        rng = random.Random(seed)
        pats = [
            {i: rng.randrange(2) for i in nl.inputs} for _ in range(100)
        ]
        got = simulate_many(nl, pats)
        for p, g in zip(pats, got):
            assert g == nl.evaluate_outputs(p)

    def test_array_input_form(self):
        nl = c17()
        words = exhaustive_words(5)
        sim = BitSimulator(nl)
        out1 = sim.run_outputs(words)
        out2 = sim.run_outputs(
            {name: words[i] for i, name in enumerate(nl.inputs)}
        )
        assert (out1 == out2).all()

    def test_wrong_input_count_rejected(self):
        sim = BitSimulator(c17())
        with pytest.raises(ValueError):
            sim.run(np.zeros((3, 1), dtype=np.uint64))

    def test_missing_input_rejected(self):
        sim = BitSimulator(c17())
        with pytest.raises(ValueError):
            sim.run({"G1": np.zeros(1, dtype=np.uint64)})

    def test_forced_net_propagates(self):
        nl = Netlist("f")
        nl.add_input("a")
        nl.add_gate("m", GateType.NOT, ["a"])
        nl.add_gate("y", GateType.NOT, ["m"])
        nl.set_outputs(["y"])
        sim = BitSimulator(nl)
        ones = broadcast_constant(1, 1)
        out = sim.run_outputs({"a": broadcast_constant(0, 1)}, forced={"m": ones * 0})
        # m forced to 0 -> y = 1
        assert int(out[0][0]) & 1 == 1

    def test_forced_input_net(self):
        nl = Netlist("f")
        nl.add_input("a")
        nl.add_gate("y", GateType.BUF, ["a"])
        nl.set_outputs(["y"])
        sim = BitSimulator(nl)
        out = sim.run_outputs(
            {"a": broadcast_constant(0, 1)},
            forced={"a": broadcast_constant(1, 1)},
        )
        assert int(out[0][0]) & 1 == 1


class TestPatternSources:
    def test_random_words_deterministic(self):
        a = random_words(4, 100, seed=5)
        b = random_words(4, 100, seed=5)
        assert (a == b).all()
        c = random_words(4, 100, seed=6)
        assert not (a == c).all()

    def test_random_words_tail_masked(self):
        w = random_words(2, 10, seed=0)
        assert ((w[:, -1] & ~tail_mask(10)) == 0).all()

    def test_exhaustive_limits(self):
        with pytest.raises(ValueError):
            exhaustive_words(21)

    def test_weighted_bias(self):
        w = weighted_words(1, 6400, 0.9, seed=0)
        assert popcount_words(w) > 5000

    @given(st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_int_assignment_roundtrip(self, v):
        names = [f"x{i}" for i in range(8)]
        asg = int_to_assignment(v, names)
        assert assignment_to_int(asg, names) == v


class TestMetrics:
    def test_hamming_distance_words(self):
        a = np.array([[np.uint64(0b1100)]])
        b = np.array([[np.uint64(0b1010)]])
        assert hamming_distance_words(a.copy(), b, 4) == 2

    def test_measure_corruption_detects_xor_key(self):
        # locked: y = a XOR k ; correct key 0 -> wrong key flips everything
        nl = Netlist("l")
        nl.add_input("a")
        nl.add_input("k")
        nl.add_gate("y", GateType.XOR, ["a", "k"])
        nl.set_outputs(["y"])
        rep = measure_corruption(nl, ["k"], {"k": 0}, n_patterns=256, n_keys=3)
        assert rep.hd_percent == 100.0
        assert rep.corrupted_pattern_fraction == 1.0

    def test_measure_corruption_zero_for_dead_key(self):
        nl = Netlist("l")
        nl.add_input("a")
        nl.add_input("k")
        nl.add_gate("dead", GateType.AND, ["k", "k"])
        nl.add_gate("y", GateType.BUF, ["a"])
        nl.set_outputs(["y"])
        rep = measure_corruption(nl, ["k"], {"k": 0}, n_patterns=256, n_keys=1)
        assert rep.hd_percent == 0.0

    def test_functional_match_identical(self):
        nl = ripple_adder(3)
        assert functional_match_fraction(nl, nl.copy(), n_patterns=256) == 1.0

    def test_functional_match_with_fixed_inputs(self):
        a = Netlist("a")
        a.add_input("x")
        a.add_gate("y", GateType.BUF, ["x"])
        a.set_outputs(["y"])
        b = Netlist("b")
        b.add_input("x")
        b.add_input("k")
        b.add_gate("y", GateType.XOR, ["x", "k"])
        b.set_outputs(["y"])
        assert (
            functional_match_fraction(a, b, n_patterns=128, inputs_b={"k": 0})
            == 1.0
        )
        assert (
            functional_match_fraction(a, b, n_patterns=128, inputs_b={"k": 1})
            == 0.0
        )

    def test_mismatched_inputs_rejected(self):
        a = ripple_adder(2)
        b = ripple_adder(3)
        with pytest.raises(ValueError):
            functional_match_fraction(a, b)
