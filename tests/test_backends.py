"""Execution-backend layer: registry contract, lane equivalence, solver
persistence and the incremental SAT attack.

The differential suites assert *byte-identical* packed output words
between every available lane and the bit-true :class:`BitSimulator`
oracle — across acyclic and cyclic circuits, non-multiple-of-64 pattern
tails and degenerate key widths — because the fused planner rewrites the
tape aggressively (polarity absorption, De Morgan dual forms, live-range
row reuse) and "close enough" is not a thing for bit vectors.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bench import GeneratorConfig, generate_netlist
from repro.locking import lock_cyclic, lock_random
from repro.netlist import Netlist
from repro.sat import Solver
from repro.sim import (
    BackendUnavailable,
    BitSimulator,
    available_backends,
    compile_engine,
    get_backend,
    list_backends,
    pack_patterns,
    resolve_backend,
)
from repro.sim.patterns import random_words


def _circuit(seed, n_gates=80, n_inputs=8, n_outputs=6, depth=5):
    return generate_netlist(
        GeneratorConfig(
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            n_gates=n_gates,
            depth=depth,
            seed=seed,
            name=f"bk{seed}",
        )
    )


def _reference_outputs(netlist, input_words, n_patterns):
    """Bit-true oracle: per-pattern scalar simulation, repacked."""
    sim = BitSimulator(netlist)
    rows = []
    names = list(netlist.inputs)
    for c in range(n_patterns):
        assignment = {
            name: np.array(
                [(int(input_words[r][c >> 6]) >> (c & 63)) & 1],
                dtype=np.uint64,
            )
            for r, name in enumerate(names)
        }
        out_words = sim.run_outputs(assignment)  # (n_out, 1) packed words
        rows.append([int(w[0]) & 1 for w in out_words])
    # pack_patterns: (n_patterns, n_signals) -> (n_signals, n_words)
    return pack_patterns(np.array(rows, dtype=np.uint8))


class TestRegistry:
    def test_standard_lanes_registered(self):
        names = list_backends()
        assert {"numpy", "fused", "numba", "cupy"} <= set(names)

    def test_always_available_lanes(self):
        assert "numpy" in available_backends()
        assert "fused" in available_backends()

    def test_unknown_backend_is_value_error(self):
        with pytest.raises(ValueError, match="unknown sim backend"):
            get_backend("nonsense")
        with pytest.raises(ValueError, match="unknown sim backend"):
            resolve_backend("nonsense")

    def test_auto_resolves_to_available_lane(self):
        lane = resolve_backend("auto")
        assert lane.name in available_backends()

    @pytest.mark.parametrize("lane", ["numba", "cupy"])
    def test_optional_lane_unavailable_is_clean(self, lane):
        backend = get_backend(lane)
        if backend.available():  # pragma: no cover - accelerator machines
            pytest.skip(f"{lane} actually present")
        with pytest.raises(BackendUnavailable):
            resolve_backend(lane)


def _available_lanes():
    return [n for n in available_backends() if n != "numpy"]


class TestDifferential:
    """Every available lane == the scalar oracle, byte for byte."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n_patterns", [64, 777])
    def test_acyclic_run_outputs(self, seed, n_patterns):
        netlist = _circuit(seed)
        engine = compile_engine(netlist, cache=False)
        words = random_words(len(netlist.inputs), n_patterns, seed=seed)
        ref = engine.run_outputs(words, backend="numpy")
        expected = _reference_outputs(netlist, words, n_patterns)
        mask = np.uint64(0xFFFFFFFFFFFFFFFF)
        if n_patterns % 64:
            mask = np.uint64((1 << (n_patterns % 64)) - 1)
        assert np.array_equal(ref[:, :-1], expected[:, :-1])
        assert np.array_equal(ref[:, -1] & mask, expected[:, -1] & mask)
        for lane in _available_lanes():
            got = engine.run_outputs(words, backend=lane)
            assert np.array_equal(got[:, :-1], ref[:, :-1]), lane
            assert np.array_equal(got[:, -1] & mask, ref[:, -1] & mask), lane

    @pytest.mark.parametrize("seed", [0, 5])
    def test_cyclic_regions(self, seed):
        netlist = _circuit(seed, n_gates=120)
        cyclic = lock_cyclic(netlist, 4, rng=seed).locked
        engine = compile_engine(cyclic, cache=False)
        words = random_words(len(cyclic.inputs), 256, seed=seed + 1)
        ref = engine.run_outputs(words, backend="numpy")
        for lane in _available_lanes():
            got = engine.run_outputs(words, backend=lane)
            assert np.array_equal(got, ref), lane

    @pytest.mark.parametrize("key_width", [0, 1, 67])
    def test_run_keyed_key_widths(self, key_width):
        netlist = _circuit(7, n_gates=180, n_inputs=6)
        locked = (
            lock_random(netlist, key_width, rng=3).locked
            if key_width
            else netlist
        )
        key_inputs = [
            i for i in locked.inputs if i.startswith("keyinput")
        ]
        data_inputs = [i for i in locked.inputs if i not in set(key_inputs)]
        assert len(key_inputs) == key_width
        engine = compile_engine(locked, cache=False)
        rng = np.random.default_rng(11)
        data_words = random_words(len(data_inputs), 130, seed=2)
        key_bits = rng.integers(0, 2, size=(5, key_width), dtype=np.uint8)
        ref = engine.run_keyed(
            data_inputs, data_words, key_inputs, key_bits, backend="numpy"
        )
        for lane in _available_lanes():
            got = engine.run_keyed(
                data_inputs, data_words, key_inputs, key_bits, backend=lane
            )
            assert got.dtype == ref.dtype and got.shape == ref.shape
            assert np.array_equal(got, ref), lane

    def test_forced_nets_fall_back_identically(self):
        netlist = _circuit(13)
        engine = compile_engine(netlist, cache=False)
        words = random_words(len(netlist.inputs), 64, seed=0)
        some_net = next(iter(netlist.outputs))
        forced = {some_net: np.zeros(1, dtype=np.uint64)}
        ref = engine.run_outputs(words, forced=forced, backend="numpy")
        got = engine.run_outputs(words, forced=forced, backend="fused")
        assert np.array_equal(got, ref)


class TestFusedInternals:
    def test_plan_cache_counters(self):
        from repro import telemetry
        from repro.sim.backends.fused import _plan_for
        from repro.telemetry import MemorySink

        netlist = _circuit(21)
        engine = compile_engine(netlist, cache=False)
        telemetry.configure(MemorySink())
        try:
            base = telemetry.counter_totals()
            p1 = _plan_for(engine, 4)
            p2 = _plan_for(engine, 4)
            assert p1 is p2
            p3 = _plan_for(engine, 8)
            assert p3 is not p1
            totals = telemetry.counter_totals()
            # program build + two distinct-width plan builds, one hit
            built = totals.get("optape.plan.build", 0) - base.get(
                "optape.plan.build", 0
            )
            hits = totals.get("optape.plan.hit", 0) - base.get(
                "optape.plan.hit", 0
            )
            assert built == 3
            assert hits == 1
        finally:
            telemetry.shutdown()

    def test_threaded_key_lanes_match(self):
        code = (
            "import numpy as np\n"
            "from repro.bench import GeneratorConfig, generate_netlist\n"
            "from repro.locking import lock_random\n"
            "from repro.sim import compile_engine\n"
            "from repro.sim.patterns import random_words\n"
            "n = generate_netlist(GeneratorConfig(n_inputs=6, n_outputs=5,"
            " n_gates=70, depth=4, seed=3, name='t'))\n"
            "lc = lock_random(n, 8, rng=1)\n"
            "ki = lc.key_inputs\n"
            "di = [i for i in lc.locked.inputs if i not in set(ki)]\n"
            "e = compile_engine(lc.locked, cache=False)\n"
            "dw = random_words(len(di), 192, seed=5)\n"
            "kb = np.random.default_rng(9).integers(0, 2, size=(8, 8),"
            " dtype=np.uint8)\n"
            "ref = e.run_keyed(di, dw, ki, kb, backend='numpy')\n"
            "got = e.run_keyed(di, dw, ki, kb, backend='fused')\n"
            "assert np.array_equal(got, ref)\n"
            "print('MATCH')\n"
        )
        env = dict(os.environ, REPRO_FUSED_THREADS="3")
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "MATCH" in proc.stdout


class TestSolverPersistence:
    """Learned-clause retention across solve(assumptions=...) calls must
    never change a SAT/UNSAT answer."""

    def _random_cnf(self, rng, n_vars, n_clauses):
        clauses = []
        for _ in range(n_clauses):
            width = rng.choice([2, 3, 3])
            vs = rng.sample(range(1, n_vars + 1), width)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in vs]
            )
        return clauses

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_incremental_answers_match_fresh(self, seed):
        import random

        rng = random.Random(seed)
        n_vars = 30
        clauses = self._random_cnf(rng, n_vars, 110)
        persistent = Solver()
        for c in clauses:
            persistent.add_clause(c)
        for probe in range(12):
            assumps = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, n_vars + 1), 4)
            ]
            fresh = Solver()
            for c in clauses:
                fresh.add_clause(c)
            expected = fresh.solve(assumptions=assumps).sat
            got = persistent.solve(assumptions=assumps).sat
            assert got == expected, (seed, probe, assumps)

    def test_learned_clauses_accumulate(self):
        import random

        rng = random.Random(7)
        solver = Solver()
        for c in self._random_cnf(rng, 40, 170):
            solver.add_clause(c)
        solver.solve(assumptions=[1, 2])
        solver.solve(assumptions=[-1, -2])
        # conflict stats accumulate across calls (persistence, not resets)
        assert solver.stats_conflicts >= 0
        total = solver.solve()
        assert total.conflicts <= solver.stats_conflicts


class TestIncrementalSATAttack:
    @pytest.fixture(scope="class")
    def instance(self):
        # the bench's fixed instance: hard enough that legacy needs
        # several DIP iterations, so solver persistence + batching have
        # room to show (tiny instances converge in 2 DIPs either way)
        base = _circuit(4, n_gates=120, n_inputs=10, n_outputs=10, depth=6)
        return base, lock_random(base, 16, rng=7)

    def _oracle(self, base):
        from repro.attacks.oracle import IdealOracle

        return IdealOracle(base)

    def test_incremental_matches_legacy_and_solves_less(self, instance):
        from repro.attacks import SATAttackConfig, sat_attack
        from repro.sat import prove_unlocks

        base, lc = instance
        legacy = sat_attack(
            lc.locked,
            lc.key_inputs,
            self._oracle(base),
            SATAttackConfig(max_iterations=128, incremental=False),
        )
        inc = sat_attack(
            lc.locked,
            lc.key_inputs,
            self._oracle(base),
            SATAttackConfig(max_iterations=128),
        )
        assert legacy.completed and inc.completed
        assert prove_unlocks(base, lc.locked, legacy.recovered_key)
        assert prove_unlocks(base, lc.locked, inc.recovered_key)
        assert inc.notes["n_solves"] <= legacy.notes["n_solves"]
        assert inc.notes["dips_per_solve"] >= legacy.notes["dips_per_solve"]

    def test_batching_disabled_still_correct(self, instance):
        from repro.attacks import SATAttackConfig, sat_attack
        from repro.sat import prove_unlocks

        base, lc = instance
        res = sat_attack(
            lc.locked,
            lc.key_inputs,
            self._oracle(base),
            SATAttackConfig(max_iterations=128, dip_batch=1),
        )
        assert res.completed
        assert prove_unlocks(base, lc.locked, res.recovered_key)

    def test_zero_key_width(self):
        from repro.attacks import SATAttackConfig, sat_attack

        base = _circuit(17, n_gates=40, n_inputs=5, n_outputs=4)
        res = sat_attack(
            base, [], self._oracle(base), SATAttackConfig(max_iterations=16)
        )
        assert res.completed
        assert res.recovered_key == {}

    def test_iteration_budget_respected(self, instance):
        from repro.attacks import SATAttackConfig, sat_attack

        base, lc = instance
        res = sat_attack(
            lc.locked,
            lc.key_inputs,
            self._oracle(base),
            SATAttackConfig(max_iterations=1),
        )
        assert res.iterations <= 1


class TestMetricsKnobs:
    def _locked(self):
        base = _circuit(8, n_gates=70, n_inputs=7, n_outputs=6)
        return base, lock_random(base, 6, rng=2)

    def test_max_matrix_bytes_env_override(self, monkeypatch):
        from repro.sim import resolve_max_matrix_bytes
        from repro.sim.metrics import DEFAULT_MAX_MATRIX_BYTES

        assert resolve_max_matrix_bytes() == DEFAULT_MAX_MATRIX_BYTES
        monkeypatch.setenv("REPRO_MAX_MATRIX_BYTES", "65536")
        assert resolve_max_matrix_bytes() == 65536
        assert resolve_max_matrix_bytes(123456) == 123456
        monkeypatch.setenv("REPRO_MAX_MATRIX_BYTES", "not-an-int")
        with pytest.raises(ValueError):
            resolve_max_matrix_bytes()

    def test_tiny_chunk_cap_matches_scalar(self):
        from repro.sim import measure_corruption

        _, lc = self._locked()
        scalar = measure_corruption(
            lc.locked,
            lc.key_inputs,
            lc.correct_key,
            n_patterns=777,
            n_keys=5,
            seed=1,
            backend="scalar",
        )
        tiny = measure_corruption(
            lc.locked,
            lc.key_inputs,
            lc.correct_key,
            n_patterns=777,
            n_keys=5,
            seed=1,
            backend="fused",
            max_matrix_bytes=1,  # every chunk degenerates to one lane
        )
        assert tiny == scalar

    def test_backend_salts_cache_key(self):
        from repro.sim.metrics import _corruption_cache_key

        _, lc = self._locked()

        def key_for(lane):
            store_key = _corruption_cache_key(
                lc.locked,
                lc.key_inputs,
                lc.correct_key,
                1024,
                4,
                0,
                lane,
            )
            return store_key

        k_fused = key_for("fused")
        k_numpy = key_for("numpy")
        if k_fused == (None, None):
            pytest.skip("result cache disabled in this environment")
        assert k_fused != k_numpy

    def test_optape_backend_name_removed(self):
        from repro.sim import measure_corruption

        _, lc = self._locked()
        with pytest.raises(ValueError, match="optape"):
            measure_corruption(
                lc.locked,
                lc.key_inputs,
                lc.correct_key,
                n_patterns=64,
                n_keys=2,
                seed=0,
                backend="optape",
            )


class TestEngineDispatchValidation:
    def test_run_keyed_validates_before_dispatch(self):
        netlist = _circuit(19, n_inputs=5)
        engine = compile_engine(netlist, cache=False)
        data_inputs = list(netlist.inputs)
        words = random_words(len(data_inputs) - 1, 64, seed=0)  # short rows
        with pytest.raises(ValueError):
            engine.run_keyed(
                data_inputs, words, [], np.zeros((1, 0), np.uint8),
                backend="fused",
            )

    def test_fingerprint_memo_survives_copy_and_mutation(self):
        from repro.sim import netlist_fingerprint

        netlist = _circuit(23)
        fp1 = netlist_fingerprint(netlist)
        assert netlist_fingerprint(netlist) == fp1  # memoized path
        copied = netlist.copy()
        assert netlist_fingerprint(copied) == fp1
        assert isinstance(copied, Netlist)
        gate_name = next(iter(copied.outputs))
        copied.rename_net(gate_name, gate_name + "_renamed")
        assert netlist_fingerprint(copied) != fp1
