"""Tests for BENCH parsing and writing."""

import pytest

from repro.bench import c17
from repro.netlist import (
    NetlistError,
    NetlistFormatError,
    load_bench,
    parse_bench,
    parse_bench_combinational,
    write_bench,
)

SEQ_TEXT = """
# tiny sequential
INPUT(x)
OUTPUT(y)
q = DFF(d)
n = NOT(q)
d = AND(x, n)
y = OR(q, x)
"""


class TestParse:
    def test_c17_structure(self):
        nl = c17()
        assert len(nl.inputs) == 5
        assert nl.outputs == ["G22", "G23"]
        assert nl.num_gates() == 6

    def test_c17_known_vectors(self):
        nl = c17()
        out = nl.evaluate_outputs({"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0})
        assert out == {"G22": 0, "G23": 0}
        out = nl.evaluate_outputs({"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1})
        assert out == {"G22": 1, "G23": 0}

    def test_sequential_parse(self):
        seq = parse_bench(SEQ_TEXT, name="tiny")
        assert len(seq.flops) == 1
        ff = seq.flops[0]
        assert ff.q == "q" and ff.d == "d"
        assert seq.primary_inputs == ["x"]
        assert seq.primary_outputs == ["y"]

    def test_sequential_semantics(self):
        seq = parse_bench(SEQ_TEXT)
        st = seq.reset_state()
        st, po = seq.next_state(st, {"x": 1})
        assert st == {"ff_q": 1}  # d = AND(1, NOT(0)) = 1
        assert po == {"y": 1}
        st, po = seq.next_state(st, {"x": 1})
        assert st == {"ff_q": 0}  # d = AND(1, NOT(1)) = 0

    def test_combinational_rejects_dff(self):
        with pytest.raises(NetlistError):
            parse_bench_combinational(SEQ_TEXT)

    def test_comments_and_blank_lines(self):
        text = "#c\n\nINPUT(a)\n # another\nOUTPUT(y)\ny = BUFF(a)\n"
        nl = parse_bench_combinational(text)
        assert nl.evaluate_outputs({"a": 1})["y"] == 1

    def test_inv_alias(self):
        nl = parse_bench_combinational("INPUT(a)\nOUTPUT(y)\ny = INV(a)\n")
        assert nl.evaluate_outputs({"a": 1})["y"] == 0

    def test_unknown_gate_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench_combinational("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench_combinational("INPUT(a)\nwhat is this\n")

    def test_multi_input_dff_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nq = DFF(a, a)\n")


class TestFormatErrors:
    """Malformed files raise NetlistFormatError with file/line context."""

    def test_format_error_is_netlist_error(self):
        assert issubclass(NetlistFormatError, NetlistError)

    def test_garbage_line_carries_line_number(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nwhat is this\n", source="bad.bench")
        err = ei.value
        assert err.source == "bad.bench"
        assert err.line_no == 2
        assert "bad.bench:2:" in str(err)
        assert "what is this" in str(err)

    def test_unknown_gate_carries_context(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        assert ei.value.line_no == 3
        assert "FROB" in str(ei.value)

    def test_duplicate_driver_names_both_lines(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench(text)
        assert ei.value.line_no == 4
        assert "line 3" in str(ei.value)

    def test_duplicate_input_decl_rejected(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert ei.value.line_no == 2

    def test_undefined_fanin_names_referencing_line(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        assert ei.value.line_no == 3
        assert "ghost" in str(ei.value)

    def test_undefined_output_rejected(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(nowhere)\n")
        assert "nowhere" in str(ei.value)

    def test_undefined_dff_data_rejected(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(missing)\n")
        assert "missing" in str(ei.value)

    def test_dff_arity_error_carries_line(self):
        with pytest.raises(NetlistFormatError) as ei:
            parse_bench("INPUT(a)\nq = DFF(a, a)\n")
        assert ei.value.line_no == 2

    def test_load_bench_error_names_file(self, tmp_path):
        p = tmp_path / "broken.bench"
        p.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a,\n")
        with pytest.raises(NetlistFormatError) as ei:
            load_bench(p)
        assert str(p) in str(ei.value)
        assert ei.value.line_no == 3

    def test_good_file_still_parses(self):
        seq = parse_bench(SEQ_TEXT, name="tiny", source="tiny.bench")
        assert len(seq.flops) == 1


class TestWrite:
    def test_roundtrip_combinational(self):
        nl = c17()
        text = write_bench(nl)
        back = parse_bench_combinational(text, name="c17rt")
        for a in (0, 1):
            for b in (0, 1):
                asg = {"G1": a, "G2": b, "G3": 1, "G6": 0, "G7": a}
                assert back.evaluate_outputs(asg) == nl.evaluate_outputs(asg)

    def test_roundtrip_sequential(self):
        seq = parse_bench(SEQ_TEXT)
        text = write_bench(seq)
        back = parse_bench(text)
        assert len(back.flops) == 1
        st1, po1 = seq.next_state(seq.reset_state(), {"x": 1})
        st2, po2 = back.next_state(back.reset_state(), {"x": 1})
        assert po1 == po2
        assert list(st1.values()) == list(st2.values())

    def test_write_contains_io_decls(self):
        text = write_bench(c17())
        assert "INPUT(G1)" in text
        assert "OUTPUT(G22)" in text
        assert "NAND(" in text
