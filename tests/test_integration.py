"""End-to-end integration test: the paper's whole story on one design.

Design -> WLL locking -> OraP protection -> activation -> attacks via the
real scan protocol -> Trojan escalation -> the Fig. 3 countermeasure.
"""

import random

import pytest

from repro.attacks import (
    SATAttackConfig,
    ScanOracle,
    key_is_correct,
    sat_attack,
)
from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import OraPConfig, TrojanHooks, protect
from repro.sat import prove_unlocks
from repro.sim import measure_corruption
from repro.threats import execute_freeze_attack


@pytest.fixture(scope="module")
def story():
    design = generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=12, n_outputs=18, n_gates=120, depth=7, seed=22,
                name="story",
            ),
            n_flops=10,
        )
    )
    basic = protect(
        design,
        orap=OraPConfig(variant="basic"),
        wll=WLLConfig(key_width=9, control_width=3, n_key_gates=4),
        rng=13,
    )
    modified = protect(
        design,
        orap=OraPConfig(variant="modified"),
        wll=WLLConfig(key_width=9, control_width=3, n_key_gates=4),
        rng=13,
    )
    return basic, modified


def test_act1_locking_is_sound_and_corrupting(story):
    basic, _ = story
    locked = basic.locked
    # correct key restores the function — proven, not sampled
    assert prove_unlocks(locked.original, locked.locked, locked.correct_key)
    # wrong keys corrupt heavily (WLL's purpose)
    rep = measure_corruption(
        locked.locked, locked.key_inputs, locked.correct_key,
        n_patterns=1024, n_keys=6,
    )
    assert rep.hd_percent > 15.0


def test_act2_activation_protocol(story):
    basic, modified = story
    for d in (basic, modified):
        chip = d.build_chip()
        chip.reset()
        assert not chip.is_unlocked()
        chip.unlock()
        assert chip.is_unlocked()


@pytest.mark.slow
def test_act3_sat_attack_outcomes(story):
    basic, _ = story
    locked = basic.locked
    # conventional chip: key falls
    base = basic.baseline_chip()
    base.reset()
    base.unlock()
    res = sat_attack(
        locked.locked, locked.key_inputs, ScanOracle(base),
        SATAttackConfig(max_iterations=128),
    )
    assert res.completed and key_is_correct(locked, res.recovered_key)
    # OraP chip: attack completes against locked responses — wrong key
    chip = basic.build_chip()
    chip.reset()
    chip.unlock()
    res2 = sat_attack(
        locked.locked, locked.key_inputs, ScanOracle(chip),
        SATAttackConfig(max_iterations=128),
    )
    assert res2.completed
    assert not key_is_correct(locked, res2.recovered_key)


def test_act4_trojan_escalation_and_fig3(story):
    basic, modified = story

    def vector(seed, d):
        rng = random.Random(seed)
        state = {ff.name: rng.randrange(2) for ff in d.design.flops}
        pi = {p: rng.randrange(2) for p in d.chip.primary_inputs}
        return pi, state

    def truth(d, pi, state):
        asg = dict(pi)
        asg.update(d.locked.correct_key)
        for ff in d.design.flops:
            asg[ff.q] = state[ff.name]
        return d.design.core.evaluate(asg)

    # WLL corrupts each pattern only with probability ~1-(1-2^-w)^g, so
    # judge both schemes over a deterministic batch of random vectors
    defeated = 0
    for seed in range(10):
        pi, state = vector(seed, basic)
        # the cheap freeze Trojan (threat e) beats the basic scheme on
        # every single vector: the frozen key register holds the real key
        po, captured, chip = execute_freeze_attack(basic, pi, state)
        t = truth(basic, pi, state)
        assert all(po[o] == t[o] for o in chip.primary_outputs)
        # ...while the modified scheme of Fig. 3 leaves the attacker with
        # a locked core, which must corrupt some of the batch
        po_m, captured_m, chip_m = execute_freeze_attack(modified, pi, state)
        t_m = truth(modified, pi, state)
        defeated += any(
            po_m[o] != t_m[o] for o in chip_m.primary_outputs
        ) or any(
            captured_m[ff.name] != t_m[ff.d] for ff in modified.design.flops
        )
    assert defeated > 0


def test_act5_modified_unlocks_depend_on_responses(story):
    _, modified = story
    # freezing the flops during a NORMAL unlock breaks it: the wrong
    # responses poison the LFSR (the paper's "wrong circuit responses are
    # necessary for unlocking the correct circuit functionality")
    chip = modified.build_chip(trojan=TrojanHooks(freeze_normal_ffs=True))
    chip.reset()
    chip.unlock()
    assert not chip.is_unlocked()
