"""Smoke tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_protocol_subcommand(self, capsys):
        assert main(["protocol"]) == 0
        out = capsys.readouterr().out
        assert "OraP protocol checks" in out
        assert out.count("yes") >= 12

    def test_trojans_subcommand(self, capsys):
        assert main(["trojans"]) == 0
        out = capsys.readouterr().out
        assert "Trojan scenarios" in out
        assert "128-bit" in out

    def test_table1_with_args(self, capsys):
        assert (
            main(
                [
                    "table1",
                    "--scale",
                    "0.004",
                    "--circuits",
                    "b20",
                    "--patterns",
                    "256",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "b20" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
