"""Content-addressed result cache: keys, store, and call-site wiring.

Covers the correctness contract in docs/CACHING.md:

* hit/miss round-trips through the disk store;
* invalidation on a netlist edit, a config-field change, and a
  ``CACHE_VERSION`` salt bump;
* a corrupted or tampered entry degrades to a **miss** (and heals),
  never to an exception or trusted garbage — and ``repro cache verify``
  reports the tampering;
* ``--jobs 4`` writers leave a consistent index;
* the instrumented call sites (``ExperimentRunner.run_rows``,
  ``run_attack``, ``measure_corruption``) serve identical results warm.
"""

import dataclasses
import errno
import json
import multiprocessing

import pytest

from repro import cache as result_cache
from repro.attacks import IdealOracle, SATAttackConfig, run_attack
from repro.bench import GeneratorConfig, generate_netlist
from repro.cache import CacheKey, ResultCache, Uncacheable, cache_key, normalize
from repro.cache.cli import run_cache_cli
from repro.experiments import ExperimentRunner, RowTask, RunPolicy
from repro.locking import WLLConfig, lock_weighted
from repro.netlist import GateType, Netlist
from repro.runtime import RunStatus, faultinject
from repro.runtime.budget import Budget
from repro.sim.metrics import measure_corruption


@pytest.fixture(autouse=True)
def no_global_cache():
    """Every test starts and ends with the process-global cache off."""
    result_cache.disable()
    yield
    result_cache.disable()


@pytest.fixture
def store(tmp_path):
    return ResultCache(tmp_path / "cache")


def _key(**parts) -> CacheKey:
    return cache_key("test.kind", salt="test/1", **parts)


def _tiny_netlist(name="t", extra_gate=False) -> Netlist:
    nl = Netlist(name)
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("x", GateType.AND, ["a", "b"])
    if extra_gate:
        nl.add_gate("y", GateType.OR, ["a", "x"])
        nl.set_outputs(["y"])
    else:
        nl.set_outputs(["x"])
    return nl


# --------------------------------------------------------------------- #
# key derivation


class TestKeys:
    def test_same_inputs_same_digest(self):
        assert _key(seed=3, n=10).digest == _key(seed=3, n=10).digest

    def test_any_part_changes_the_digest(self):
        base = _key(seed=3, n=10).digest
        assert _key(seed=4, n=10).digest != base
        assert _key(seed=3, n=11).digest != base

    def test_salt_bump_invalidates(self):
        a = cache_key("k", salt="mod/1", seed=3)
        b = cache_key("k", salt="mod/2", seed=3)
        assert a.digest != b.digest

    def test_kind_is_part_of_the_address(self):
        assert (
            cache_key("k1", salt="s", x=1).digest
            != cache_key("k2", salt="s", x=1).digest
        )

    def test_netlist_hashes_by_structure_not_identity(self):
        a = _key(net=_tiny_netlist())
        b = _key(net=_tiny_netlist())  # regenerated but identical
        c = _key(net=_tiny_netlist(extra_gate=True))  # one gate edit
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_dataclass_field_change_invalidates(self):
        a = _key(cfg=SATAttackConfig())
        b = _key(cfg=SATAttackConfig(max_iterations=7))
        assert a.digest != b.digest

    def test_budget_hashes_caps_not_consumed_state(self):
        fresh = Budget(max_patterns=100)
        used = Budget(max_patterns=100)
        used.charge_patterns(60)
        assert _key(b=fresh).digest == _key(b=used).digest
        assert _key(b=Budget(max_patterns=200)).digest != _key(b=fresh).digest

    def test_ideal_oracle_is_cacheable(self):
        a = _key(o=IdealOracle(_tiny_netlist()))
        b = _key(o=IdealOracle(_tiny_netlist()))
        assert a.digest == b.digest

    def test_arbitrary_objects_are_uncacheable(self):
        class Opaque:
            pass

        with pytest.raises(Uncacheable):
            _key(x=Opaque())
        with pytest.raises(Uncacheable):
            normalize(lambda: None)

    def test_non_string_dict_keys_are_uncacheable(self):
        with pytest.raises(Uncacheable):
            normalize({1: "x"})


# --------------------------------------------------------------------- #
# the disk store


class TestStore:
    def test_round_trip(self, store):
        ck = _key(seed=1)
        assert store.get(ck) is None  # cold miss
        store.put(ck, {"value": 42})
        assert store.get(ck) == {"value": 42}
        assert store.hits == 1 and store.misses == 1

    def test_unknown_key_misses(self, store):
        assert store.get(_key(seed=99)) is None
        assert store.misses == 1

    def test_corrupted_entry_degrades_to_miss_and_heals(self, store):
        ck = _key(seed=2)
        path = store.put(ck, {"value": 1})
        path.write_text("{ truncated garbage")
        assert store.get(ck) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()  # slot healed
        store.put(ck, {"value": 1})
        assert store.get(ck) == {"value": 1}

    def test_tampered_payload_misses_via_checksum(self, store):
        ck = _key(seed=3)
        path = store.put(ck, {"value": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 999  # valid JSON, wrong content
        path.write_text(json.dumps(envelope))
        assert store.get(ck) is None

    def test_verify_detects_tampering(self, store):
        ck = _key(seed=4)
        path = store.put(ck, {"value": 1})
        assert store.verify() == []
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 999
        path.write_text(json.dumps(envelope))
        problems = store.verify()
        assert any("checksum mismatch" in p for p in problems)

    def test_verify_detects_stray_entry(self, store):
        store.put(_key(seed=5), {"value": 1})
        stray = store.entries_dir / "ff" / (("f" * 32) + ".json")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_text(json.dumps({"format": 0}))
        problems = store.verify()
        assert problems  # wrong format + absent from index

    def test_unserializable_payload_is_skipped_not_raised(self, store):
        assert store.put(_key(seed=6), {"bad": object()}) is None
        assert len(store) == 0

    def test_lru_eviction_keeps_store_under_bound(self, tmp_path):
        store = ResultCache(tmp_path / "small", max_bytes=2000)
        for i in range(12):
            store.put(_key(seed=i), {"value": "x" * 100, "i": i})
        assert store.total_bytes() <= 2000
        assert store.evictions > 0
        events = [e["op"] for e in store.index_events()]
        assert "evict" in events

    def test_hit_refreshes_lru_recency(self, tmp_path, monkeypatch):
        import os as _os

        store = ResultCache(tmp_path / "lru", max_bytes=None)
        old, new = _key(seed=1), _key(seed=2)
        p_old = store.put(old, {"v": 1})
        p_new = store.put(new, {"v": 2})
        # age both, then touch `old` via a hit: it must become youngest
        for p in (p_old, p_new):
            _os.utime(p, (1.0, 1.0))
        store.get(old)
        assert p_old.stat().st_mtime > p_new.stat().st_mtime

    def test_clear_removes_entries_and_index(self, store):
        store.put(_key(seed=1), {"v": 1})
        store.put(_key(seed=2), {"v": 2})
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(_key(seed=1)) is None

    def test_format_bump_wipes_stale_store(self, tmp_path):
        root = tmp_path / "fmt"
        store = ResultCache(root)
        store.put(_key(seed=1), {"v": 1})
        (root / "VERSION").write_text("0\n")  # simulate an old format
        reopened = ResultCache(root)
        assert len(reopened) == 0
        assert (root / "VERSION").read_text().strip() == str(
            result_cache.CACHE_FORMAT
        )

    def test_stats_counts_by_kind(self, store):
        store.put(cache_key("kind.a", salt="s", x=1), {"v": 1})
        store.put(cache_key("kind.a", salt="s", x=2), {"v": 2})
        store.put(cache_key("kind.b", salt="s", x=1), {"v": 3})
        stats = store.stats()
        assert stats.entries == 3
        assert stats.by_kind == {"kind.a": 2, "kind.b": 1}
        assert stats.to_dict()["by_kind"] == {"kind.a": 2, "kind.b": 1}


class TestDegradation:
    """Disk-full / read-only filesystems turn the cache read-only for the
    rest of the run — a warning and a counter, never a failed row."""

    def test_enospc_on_entry_write_degrades_to_read_only(self, store):
        healthy = _key(seed=1)
        store.put(healthy, {"v": 1})
        faultinject.install(
            "cache.put", exc=OSError(errno.ENOSPC, "no space left on device")
        )
        try:
            with pytest.warns(RuntimeWarning, match="degraded to read-only"):
                assert store.put(_key(seed=2), {"v": 2}) is None
        finally:
            faultinject.clear()
        assert store.degraded and store.stats().degraded
        # reads keep serving what already made it to disk
        assert store.get(healthy) == {"v": 1}
        # later writes are dropped silently (the warning fired once)
        assert store.put(_key(seed=3), {"v": 3}) is None
        assert store.get(_key(seed=3)) is None

    def test_failing_index_append_degrades(self, store, monkeypatch):
        def fail_open(*args, **kwargs):
            raise OSError(errno.EROFS, "read-only file system")

        with monkeypatch.context() as m:
            m.setattr("os.open", fail_open)
            with pytest.warns(RuntimeWarning, match="index append failed"):
                store.put(_key(seed=7), {"v": 7})
        assert store.degraded

    def test_degradation_bumps_counter(self, store):
        from repro import telemetry
        from repro.telemetry import MemorySink

        telemetry.configure(MemorySink())
        faultinject.install(
            "cache.put", exc=OSError(errno.ENOSPC, "no space left on device")
        )
        try:
            with pytest.warns(RuntimeWarning, match="degraded"):
                store.put(_key(seed=8), {"v": 8})
            assert telemetry.counter_totals().get("cache.degraded") == 1
        finally:
            faultinject.clear()
            telemetry.shutdown()


def _worker_put(root, start, n):
    store = ResultCache(root)
    for i in range(start, start + n):
        store.put(cache_key("par", salt="s", i=i), {"value": i})


class TestParallelWriters:
    def test_four_processes_leave_a_consistent_index(self, tmp_path):
        root = tmp_path / "par"
        ResultCache(root)  # settle the VERSION file before forking
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_worker_put, args=(str(root), j * 8, 8))
            for j in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        store = ResultCache(root)
        assert len(store) == 32
        assert store.verify() == []
        for i in range(32):
            assert store.get(cache_key("par", salt="s", i=i)) == {"value": i}


# --------------------------------------------------------------------- #
# the process-global active cache


class TestActiveCache:
    def test_disabled_by_default(self):
        assert result_cache.active() is None

    def test_configure_and_disable(self, tmp_path):
        store = result_cache.configure(tmp_path / "c")
        assert result_cache.active() is store
        result_cache.disable()
        assert result_cache.active() is None

    def test_same_root_reuses_instance(self, tmp_path):
        a = result_cache.configure(tmp_path / "c")
        a.hits = 5
        b = result_cache.configure(tmp_path / "c", max_bytes=123)
        assert b is a and b.max_bytes == 123

    def test_different_root_replaces_instance(self, tmp_path):
        a = result_cache.configure(tmp_path / "c1")
        b = result_cache.configure(tmp_path / "c2")
        assert b is not a


# --------------------------------------------------------------------- #
# ExperimentRunner integration


def _square(x, budget=None):
    return {"value": x * x}


def _boom(x, budget=None):
    raise RuntimeError("boom")


def _tasks(n=4):
    return [
        RowTask(key=f"row{i}", compute=_square, args=(i,)) for i in range(n)
    ]


class TestRunnerCaching:
    def _runner(self, tmp_path, fingerprint=None, jobs=1):
        policy = RunPolicy(cache_dir=tmp_path / "cache", jobs=jobs)
        return ExperimentRunner(
            "cachetest", policy, fingerprint=fingerprint or {"seed": 1}
        )

    def test_warm_run_serves_every_row_from_cache(self, tmp_path):
        cold = self._runner(tmp_path)
        cold_rows = cold.run_rows(_tasks())
        assert cold.rows_computed == 4 and cold.rows_cached == 0

        warm = self._runner(tmp_path)
        warm_rows = warm.run_rows(_tasks())
        assert warm.rows_cached == 4 and warm.rows_computed == 0
        assert [o.value for o in warm_rows] == [o.value for o in cold_rows]
        assert all(o.status is RunStatus.OK for o in warm_rows)
        assert all(
            o.diagnostics.get("result_cache") for o in warm_rows
        )  # provenance marker

    def test_fingerprint_change_invalidates(self, tmp_path):
        self._runner(tmp_path, {"seed": 1}).run_rows(_tasks())
        other = self._runner(tmp_path, {"seed": 2})
        other.run_rows(_tasks())
        assert other.rows_cached == 0 and other.rows_computed == 4

    def test_error_rows_are_never_cached(self, tmp_path):
        tasks = [RowTask(key="r0", compute=_boom, args=(0,))]
        first = self._runner(tmp_path)
        assert first.run_rows(tasks)[0].status is RunStatus.ERROR
        second = self._runner(tmp_path)
        second.run_rows(tasks)
        assert second.rows_cached == 0 and second.rows_computed == 1

    def test_parallel_warm_run_hits_and_index_is_consistent(self, tmp_path):
        cold = self._runner(tmp_path, jobs=4)
        cold_rows = cold.run_rows(_tasks(8))
        warm = self._runner(tmp_path, jobs=4)
        warm_rows = warm.run_rows(_tasks(8))
        assert warm.rows_cached == 8
        assert [o.value for o in warm_rows] == [o.value for o in cold_rows]
        assert warm.cache.verify() == []

    def test_cache_hits_also_populate_checkpoints_for_resume(self, tmp_path):
        self._runner(tmp_path).run_rows(_tasks())
        policy = RunPolicy(
            cache_dir=tmp_path / "cache",
            checkpoint_dir=tmp_path / "ckpt",
            resume=True,
        )
        warm = ExperimentRunner("cachetest", policy, fingerprint={"seed": 1})
        warm.run_rows(_tasks())
        assert warm.rows_cached == 4
        third = ExperimentRunner("cachetest", policy, fingerprint={"seed": 1})
        third.run_rows(_tasks())
        assert third.rows_reused == 4  # served by resume, not the cache

    def test_no_cache_dir_means_no_caching(self, tmp_path):
        runner = ExperimentRunner("plain", fingerprint={"seed": 1})
        runner.run_rows(_tasks())
        assert runner.cache is None and runner.rows_cached == 0


# --------------------------------------------------------------------- #
# measure_corruption and run_attack call sites


@pytest.fixture(scope="module")
def wll():
    host = generate_netlist(
        GeneratorConfig(
            n_inputs=8, n_outputs=6, n_gates=60, depth=5, seed=11, name="cch"
        )
    )
    return lock_weighted(
        host, WLLConfig(key_width=6, control_width=3, n_key_gates=2), rng=3
    )


class TestMeasureCorruptionCaching:
    def test_warm_call_is_a_hit_with_identical_report(self, tmp_path, wll):
        store = result_cache.configure(tmp_path / "c")
        kw = dict(n_patterns=200, n_keys=4, seed=1)
        cold = measure_corruption(
            wll.locked, list(wll.key_inputs), wll.correct_key, **kw
        )
        assert store.hits == 0
        warm = measure_corruption(
            wll.locked, list(wll.key_inputs), wll.correct_key, **kw
        )
        assert store.hits == 1
        assert warm == cold

    def test_netlist_edit_invalidates(self, tmp_path, wll):
        store = result_cache.configure(tmp_path / "c")
        kw = dict(n_patterns=200, n_keys=4, seed=1)
        measure_corruption(
            wll.locked, list(wll.key_inputs), wll.correct_key, **kw
        )
        edited = wll.locked.copy()
        victim = edited.outputs[0]
        edited.add_gate("cache_tap", GateType.NOT, [victim])
        edited.set_outputs(list(edited.outputs) + ["cache_tap"])
        measure_corruption(
            edited, list(wll.key_inputs), wll.correct_key, **kw
        )
        assert store.hits == 0 and store.misses == 2

    def test_parameter_change_invalidates(self, tmp_path, wll):
        store = result_cache.configure(tmp_path / "c")
        for n in (200, 300):
            measure_corruption(
                wll.locked, list(wll.key_inputs), wll.correct_key,
                n_patterns=n, n_keys=4, seed=1,
            )
        assert store.hits == 0 and store.misses == 2


class TestRunAttackCaching:
    def test_warm_attack_is_served_from_cache(self, tmp_path, wll):
        store = result_cache.configure(tmp_path / "c")
        oracle = IdealOracle(wll.original)
        cfg = SATAttackConfig(max_iterations=50)
        cold = run_attack("sat", wll, oracle, config=cfg)
        assert cold.status == "ok"
        assert store.hits == 0
        warm = run_attack("sat", wll, IdealOracle(wll.original), config=cfg)
        assert store.hits == 1
        assert dataclasses.asdict(warm) == dataclasses.asdict(cold)

    def test_config_change_misses(self, tmp_path, wll):
        store = result_cache.configure(tmp_path / "c")
        oracle = IdealOracle(wll.original)
        run_attack("sat", wll, oracle, config=SATAttackConfig(max_iterations=50))
        run_attack("sat", wll, oracle, config=SATAttackConfig(max_iterations=51))
        assert store.hits == 0

    def test_disabled_cache_leaves_store_untouched(self, tmp_path, wll):
        result_cache.disable()
        run_attack(
            "sat", wll, IdealOracle(wll.original),
            config=SATAttackConfig(max_iterations=50),
        )
        assert result_cache.active() is None


# --------------------------------------------------------------------- #
# the `repro cache` CLI


class TestCacheCli:
    def test_stats_text_and_json(self, tmp_path, capsys):
        root = tmp_path / "c"
        ResultCache(root).put(_key(seed=1), {"v": 1})
        assert run_cache_cli("stats", root=root) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert run_cache_cli("stats", root=root, fmt="json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1

    def test_verify_clean_then_tampered(self, tmp_path, capsys):
        root = tmp_path / "c"
        store = ResultCache(root)
        path = store.put(_key(seed=1), {"v": 1})
        assert run_cache_cli("verify", root=root) == 0
        envelope = json.loads(path.read_text())
        envelope["payload"]["v"] = 2
        path.write_text(json.dumps(envelope))
        capsys.readouterr()
        assert run_cache_cli("verify", root=root) == 1
        assert "checksum" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        root = tmp_path / "c"
        ResultCache(root).put(_key(seed=1), {"v": 1})
        assert run_cache_cli("clear", root=root) == 0
        assert len(ResultCache(root)) == 0
