"""The streaming BENCH/Verilog front end (repro.corpus.frontend).

The strict-mode byte-for-byte contracts live in test_bench_io.py /
test_verilog_reader.py; this file covers what only the new front end
provides — tokenizer edge cases, multi-error recovery with positions,
cascade suppression, and fixture round-trip stability.
"""

from __future__ import annotations

import pytest

from repro.corpus.frontend import (
    ParseDiagnostic,
    parse_bench_recovering,
    parse_bench_strict,
    parse_path_recovering,
    parse_verilog_recovering,
    tokenize,
)
from repro.corpus.manifest import FIXTURES_DIR, entries_for
from repro.netlist.bench_io import NetlistFormatError, parse_bench, write_bench
from repro.netlist.verilog_io import write_verilog
from repro.netlist.verilog_reader import parse_verilog


class TestTokenizer:
    def test_statement_tokens_carry_columns(self):
        toks = tokenize("y = NAND(a, b)")
        assert [t.text for t in toks] == ["y", "=", "NAND", "(", "a", ",", "b", ")"]
        assert toks[0].col == 1
        assert toks[2].col == 5
        assert toks[-1].col == 14

    def test_bench_net_charset(self):
        toks = tokenize("G17[3] = AND(top/u1.q, $k0)")
        assert toks[0].text == "G17[3]"
        assert toks[4].text == "top/u1.q"
        assert toks[6].text == "$k0"

    def test_illegal_character_returns_none(self):
        assert tokenize("y = AND(a; b)") is None
        assert tokenize("y = AND(a, b) !") is None

    def test_whitespace_only(self):
        assert tokenize("   \t ") == []


class TestLineStreamExtensions:
    def test_crlf_lines_parse(self):
        text = "INPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\ny = AND(a, b)\r\n"
        result = parse_bench_recovering(text.splitlines(), name="crlf")
        assert result.ok
        assert sorted(result.circuit.core.inputs) == ["a", "b"]

    def test_backslash_continuation_merges(self):
        lines = [
            "INPUT(a)",
            "INPUT(b)",
            "OUTPUT(y)",
            "y = AND(a, \\",
            "        b)",
        ]
        result = parse_bench_recovering(lines, name="cont")
        assert result.ok
        assert result.circuit.core.gate("y").fanin == ("a", "b")
        # stats count physical lines, not merged logical lines
        assert result.stats["lines"] == 5

    def test_continuation_error_reports_first_physical_line(self):
        lines = [
            "INPUT(a)",
            "OUTPUT(y)",
            "y = FROB(a, \\",
            "         a)",
        ]
        result = parse_bench_recovering(lines, name="cont")
        assert len(result.errors) == 1
        assert result.errors[0].line_no == 3

    def test_comments_and_blank_lines_ignored(self):
        lines = [
            "# header comment",
            "",
            "INPUT(a)",
            "OUTPUT(y)  # trailing comment",
            "y = NOT(a)",
        ]
        result = parse_bench_recovering(lines, name="comments")
        assert result.ok
        assert list(result.circuit.core.outputs) == ["y"]


class TestRecovery:
    def test_multiple_errors_with_positions(self):
        lines = [
            "INPUT(a)",
            "INPUT(b)",
            "OUTPUT(y)",
            "n1 = NAND(a, b",  # line 4: unbalanced
            "n2 = FROB(a)",  # line 5: unknown op
            "y = AND(a, b)",
            "y = OR(a, b)",  # line 7: duplicate driver
        ]
        result = parse_bench_recovering(lines, name="multi", source="m.bench")
        assert [d.line_no for d in result.errors] == [4, 5, 7]
        assert all(d.source == "m.bench" for d in result.errors)
        assert all(d.line for d in result.errors)
        # best-effort model: the good statements survived
        assert result.circuit is not None
        assert result.circuit.core.gate("y").gtype.name == "AND"

    def test_duplicate_driver_keeps_first(self):
        lines = [
            "INPUT(a)",
            "INPUT(b)",
            "OUTPUT(y)",
            "y = AND(a, b)",
            "y = OR(a, b)",
        ]
        result = parse_bench_recovering(lines, name="dup")
        assert len(result.errors) == 1
        assert "already defined on line 4" in result.errors[0].message
        assert result.circuit.core.gate("y").gtype.name == "AND"

    def test_cascade_suppression_one_typo_one_diagnostic(self):
        # the dropped FROB line leaves n1 undefined; the semantic pass
        # must NOT pile an undefined-net error on top of the scan error
        lines = [
            "INPUT(a)",
            "OUTPUT(y)",
            "n1 = FROB(a)",
            "y = NOT(n1)",
        ]
        result = parse_bench_recovering(lines, name="cascade")
        assert len(result.errors) == 1
        assert "FROB" in result.errors[0].message

    def test_semantic_errors_only_on_clean_scan(self):
        lines = [
            "INPUT(a)",
            "OUTPUT(y)",
            "y = AND(a, ghost)",
        ]
        result = parse_bench_recovering(lines, name="sem")
        assert len(result.errors) == 1
        assert "ghost" in result.errors[0].message
        assert result.errors[0].line_no == 3

    def test_strict_mode_raises_first_error(self):
        with pytest.raises(NetlistFormatError) as exc:
            parse_bench_strict(
                "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", source="s.bench"
            )
        assert "s.bench:3" in str(exc.value)

    def test_verilog_recovery_locates_bad_statement(self):
        text = (
            "module bad (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  wire n1;\n"
            "  frobnicate q9 (n1, a);\n"
            "  not g2 (y, n1);\n"
            "endmodule\n"
        )
        result = parse_verilog_recovering(text.splitlines(), name="bad")
        assert len(result.errors) == 1
        assert result.errors[0].line_no == 5
        assert "frobnicate" in result.errors[0].message

    def test_verilog_missing_endmodule_is_located(self):
        text = "module t (a, y);\n  input a;\n  output y;\n  not g (y, a);\n"
        result = parse_verilog_recovering(text.splitlines(), name="t")
        assert any("missing endmodule" in d.message for d in result.errors)
        assert all(d.line_no > 0 for d in result.errors)


class TestDiagnosticFormatting:
    def test_format_variants(self):
        d = ParseDiagnostic("boom", source="f.bench", line_no=3, col=7)
        assert d.format() == "f.bench:3:7: boom"
        d = ParseDiagnostic("boom", source="f.bench", line_no=3)
        assert d.format() == "f.bench:3: boom"
        d = ParseDiagnostic("boom", source="f.bench")
        assert d.format() == "f.bench: boom"

    def test_to_lint_is_io001_error(self):
        d = ParseDiagnostic("boom", source="f.bench", line_no=3)
        diag = d.to_lint("netlist")
        assert diag.rule_id == "IO001"
        assert "cannot parse BENCH" in diag.message
        assert diag.location.line_no == 3


class TestFixtureRoundTrip:
    """parse → write → reparse → write must be byte-stable per fixture."""

    @pytest.mark.parametrize(
        "entry",
        [e for e in entries_for(offline=True) if e.fmt == "bench"],
        ids=lambda e: e.name,
    )
    def test_bench_fixture_roundtrip(self, entry):
        text = (FIXTURES_DIR / entry.vendored).read_text()
        circuit = parse_bench(text, name=entry.name)
        first = write_bench(circuit)
        again = parse_bench(first, name=entry.name)
        assert write_bench(again) == first
        # structural identity, not just textual
        assert sorted(g.name for g in again.core.gates()) == sorted(
            g.name for g in circuit.core.gates()
        )
        assert sorted(f.q for f in again.flops) == sorted(
            f.q for f in circuit.flops
        )

    @pytest.mark.parametrize(
        "entry",
        [e for e in entries_for(offline=True) if e.fmt == "verilog"],
        ids=lambda e: e.name,
    )
    def test_verilog_fixture_roundtrip(self, entry):
        text = (FIXTURES_DIR / entry.vendored).read_text()
        circuit = parse_verilog(text)
        first = write_verilog(circuit)
        again = parse_verilog(first)
        assert write_verilog(again) == first

    def test_parse_path_dispatches_on_suffix(self, tmp_path):
        (tmp_path / "x.bench").write_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
        )
        (tmp_path / "x.v").write_text(
            "module x (a, y);\n  input a;\n  output y;\n"
            "  not g (y, a);\nendmodule\n"
        )
        assert parse_path_recovering(tmp_path / "x.bench").ok
        assert parse_path_recovering(tmp_path / "x.v").ok
