"""Tests for the pulse generator, key register, and protected-chip model."""

import random

import pytest

from repro.bench import GeneratorConfig, SequentialConfig, generate_sequential
from repro.locking import WLLConfig
from repro.orap import (
    ChipError,
    KeyRegister,
    LFSRConfig,
    OraPConfig,
    PulseGenerator,
    ScanCellKind,
    TrojanHooks,
    protect,
)


@pytest.fixture(scope="module")
def design():
    return generate_sequential(
        SequentialConfig(
            comb=GeneratorConfig(
                n_inputs=10, n_outputs=14, n_gates=110, depth=6, seed=4, name="d"
            ),
            n_flops=8,
        )
    )


@pytest.fixture(scope="module")
def protected(design):
    return protect(
        design,
        orap=OraPConfig(variant="basic"),
        wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
        rng=9,
    )


class TestPulseGenerator:
    def test_fires_only_on_rising_edge(self):
        p = PulseGenerator()
        p.reset(scan_enable=0)
        assert not p.sense(0)
        assert p.sense(1)  # 0 -> 1
        assert not p.sense(1)  # level hold
        assert not p.sense(0)  # falling edge
        assert p.sense(1)  # rising again

    def test_suppression(self):
        p = PulseGenerator(suppressed=True)
        p.reset(scan_enable=0)
        assert not p.sense(1)

    def test_gate_cost(self):
        assert PulseGenerator().gate_cost() == 4  # 3 inverters + NAND2


class TestKeyRegister:
    def test_clear_on_scan_enable(self):
        kr = KeyRegister(LFSRConfig(size=8))
        for g in kr.pulses:
            g.reset(0)
        kr.lfsr.state = [1] * 8
        cleared = kr.sense_scan_enable(1)
        assert cleared == list(range(8))
        assert kr.key_bits() == [0] * 8

    def test_partial_suppression(self):
        kr = KeyRegister(LFSRConfig(size=4))
        for g in kr.pulses:
            g.reset(0)
        kr.suppress_pulses([1, 3])
        kr.lfsr.state = [1, 1, 1, 1]
        kr.sense_scan_enable(1)
        assert kr.key_bits() == [0, 1, 0, 1]

    def test_unlock_step_requires_enable(self):
        kr = KeyRegister(LFSRConfig(size=4))
        with pytest.raises(RuntimeError):
            kr.unlock_step([0, 0, 0, 0])
        kr.begin_unlock()
        kr.unlock_step([1, 0, 0, 0])
        kr.freeze()
        with pytest.raises(RuntimeError):
            kr.unlock_step([0, 0, 0, 0])

    def test_scan_cell_access(self):
        kr = KeyRegister(LFSRConfig(size=4))
        kr.scan_cell_set(2, 1)
        assert kr.scan_cell_get(2) == 1

    def test_gate_overhead_accounting(self):
        cfg = LFSRConfig(size=16, taps=(8,), reseed_points=tuple(range(16)))
        o = KeyRegister(cfg).gate_overhead()
        assert o["pulse_generators"] == 16 * 4
        assert o["reseed_xors"] == 16
        assert o["feedback_xors"] == 1
        assert o["total"] == 64 + 16 + 1


class TestChipUnlock:
    def test_unlock_reaches_correct_key(self, protected):
        chip = protected.build_chip()
        chip.reset()
        assert not chip.is_unlocked()
        chip.unlock()
        assert chip.is_unlocked()
        assert chip.key_register.key_bits() == list(protected.locked.key_vector())

    def test_unlock_requires_functional_mode(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.enter_scan_mode()
        with pytest.raises(ChipError):
            chip.unlock()

    def test_functional_cycle_requires_functional_mode(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.enter_scan_mode()
        with pytest.raises(ChipError):
            chip.functional_cycle({})

    def test_unlocked_chip_behaves_as_original(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        rng = random.Random(0)
        # drive random functional cycles; compare against reference model
        state = dict(chip.ff_state)
        for _ in range(10):
            pi = {p: rng.randrange(2) for p in chip.primary_inputs}
            po = chip.functional_cycle(pi)
            assignment = dict(pi)
            assignment.update(protected.locked.correct_key)
            for ff in protected.design.flops:
                assignment[ff.q] = state[ff.name]
            values = protected.design.core.evaluate(assignment)
            assert po == {o: values[o] for o in chip.primary_outputs}
            state = {ff.name: values[ff.d] for ff in protected.design.flops}
            assert state == chip.ff_state


class TestChipScanProtocol:
    def test_scan_entry_clears_key(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        chip.enter_scan_mode()
        assert chip.key_register.key_bits() == [0] * protected.lfsr_config.size

    def test_scan_requires_enable(self, protected):
        chip = protected.build_chip()
        chip.reset()
        with pytest.raises(ChipError):
            chip.scan_shift_cycle()
        with pytest.raises(ChipError):
            chip.scan_unload()
        with pytest.raises(ChipError):
            chip.scan_load({})
        with pytest.raises(ChipError):
            chip.scan_capture({})

    def test_scan_load_unload_roundtrip(self, protected):
        chip = protected.build_chip()
        chip.reset()
        chip.enter_scan_mode()
        rng = random.Random(1)
        target = {ff.name: rng.randrange(2) for ff in protected.design.flops}
        chip.scan_load(target)
        observed = chip.scan_unload()
        for name, bit in target.items():
            assert observed[name] == bit

    def test_key_cells_visible_in_chains(self, protected):
        chip = protected.build_chip()
        kinds = {
            c.kind for chain in chip.scan_chain_cells() for c in chain
        }
        assert kinds == {ScanCellKind.FLOP, ScanCellKind.KEY}

    def test_baseline_chains_have_no_key_cells(self, protected):
        chip = protected.baseline_chip()
        kinds = {
            c.kind for chain in chip.scan_chain_cells() for c in chain
        }
        assert kinds == {ScanCellKind.FLOP}

    def test_oracle_query_locked_responses(self, protected):
        """After scan entry the key is cleared, so captures use key=0."""
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        rng = random.Random(2)
        state = {ff.name: rng.randrange(2) for ff in protected.design.flops}
        pi = {p: rng.randrange(2) for p in chip.primary_inputs}
        po, captured = chip.oracle_query(pi, state)
        # ground truth with key = all zeros (the cleared register)
        assignment = dict(pi)
        for k in protected.locked.key_inputs:
            assignment[k] = 0
        for ff in protected.design.flops:
            assignment[ff.q] = state[ff.name]
        values = protected.design.core.evaluate(assignment)
        assert po == {o: values[o] for o in chip.primary_outputs}
        for ff in protected.design.flops:
            assert captured[ff.name] == values[ff.d]

    def test_baseline_oracle_query_correct_responses(self, protected):
        chip = protected.baseline_chip()
        chip.reset()
        chip.unlock()
        rng = random.Random(3)
        state = {ff.name: rng.randrange(2) for ff in protected.design.flops}
        pi = {p: rng.randrange(2) for p in chip.primary_inputs}
        po, captured = chip.oracle_query(pi, state)
        assignment = dict(pi)
        assignment.update(protected.locked.correct_key)
        for ff in protected.design.flops:
            assignment[ff.q] = state[ff.name]
        values = protected.design.core.evaluate(assignment)
        assert po == {o: values[o] for o in chip.primary_outputs}
        for ff in protected.design.flops:
            assert captured[ff.name] == values[ff.d]

    def test_last_functional_response_leaks_once(self, protected):
        """The Sect. II-A corner: the last capture before scan entry is a
        correct response of the unlocked circuit."""
        chip = protected.build_chip()
        chip.reset()
        chip.unlock()
        rng = random.Random(4)
        pi = {p: rng.randrange(2) for p in chip.primary_inputs}
        pre_state = dict(chip.ff_state)
        chip.functional_cycle(pi)
        post_state = dict(chip.ff_state)
        chip.enter_scan_mode()
        observed = chip.scan_unload()
        for ff in protected.design.flops:
            assert observed[ff.name] == post_state[ff.name]
        # and that state is the correct-key response to (pi, pre_state)
        assignment = dict(pi)
        assignment.update(protected.locked.correct_key)
        for ff in protected.design.flops:
            assignment[ff.q] = pre_state[ff.name]
        values = protected.design.core.evaluate(assignment)
        for ff in protected.design.flops:
            assert post_state[ff.name] == values[ff.d]


class TestChipPlacements:
    @pytest.mark.parametrize("placement", ["interleaved", "head", "clustered"])
    def test_placement_covers_all_cells(self, design, placement):
        d = protect(
            design,
            orap=OraPConfig(variant="basic", placement=placement),
            wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
            rng=9,
        )
        chip = d.build_chip()
        key_cells = [
            c.ref
            for chain in chip.chains
            for c in chain
            if c.kind is ScanCellKind.KEY
        ]
        assert sorted(key_cells) == list(range(10))
        flop_cells = [
            c.ref
            for chain in chip.chains
            for c in chain
            if c.kind is ScanCellKind.FLOP
        ]
        assert sorted(flop_cells) == sorted(f.name for f in design.flops)

    def test_interleaved_alternates(self, protected):
        chip = protected.build_chip()
        chain = chip.chains[0]
        # first cell is a key cell (LFSR cells before normal flops)
        assert chain[0].kind is ScanCellKind.KEY

    def test_unknown_placement_rejected(self, design):
        with pytest.raises(ValueError):
            protect(
                design,
                orap=OraPConfig(variant="basic", placement="bogus"),
                wll=WLLConfig(key_width=10, control_width=3, n_key_gates=4),
                rng=9,
            )


class TestTrojanHooksOnChip:
    def test_freeze_stops_ff_updates(self, protected):
        chip = protected.build_chip(trojan=TrojanHooks(freeze_normal_ffs=True))
        chip.reset()
        before = dict(chip.ff_state)
        chip.functional_cycle({p: 1 for p in chip.primary_inputs})
        assert chip.ff_state == before

    def test_suppress_all_keeps_key_through_scan(self, protected):
        hooks = TrojanHooks()
        chip = protected.build_chip(trojan=hooks)
        chip.reset()
        chip.unlock()
        hooks.suppress_pulse_all = True
        chip.enter_scan_mode()
        assert chip.is_unlocked()  # clear suppressed at the stem

    def test_bypass_hides_key_cells_from_scan(self, protected):
        hooks = TrojanHooks()
        chip = protected.build_chip(trojan=hooks)
        chip.reset()
        chip.unlock()
        hooks.suppress_pulse_all = True
        hooks.bypass_key_cells_in_scan = True
        chip.enter_scan_mode()
        observed = chip.scan_unload()
        assert not any(k.startswith("kr") for k in observed)
        assert chip.is_unlocked()  # key cells held their values
