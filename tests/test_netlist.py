"""Unit tests for the combinational netlist container."""

import pytest

from repro.netlist import GateType, Netlist, NetlistError


@pytest.fixture
def xor_circuit():
    nl = Netlist("x")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("na", GateType.NOT, ["a"])
    nl.add_gate("nb", GateType.NOT, ["b"])
    nl.add_gate("t1", GateType.AND, ["a", "nb"])
    nl.add_gate("t2", GateType.AND, ["na", "b"])
    nl.add_gate("y", GateType.OR, ["t1", "t2"])
    nl.set_outputs(["y"])
    return nl


class TestConstruction:
    def test_duplicate_net_rejected(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_gate("a", GateType.NOT, ["a"])

    def test_string_gate_type(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("y", "not", ["a"])
        assert nl.gate("y").gtype is GateType.NOT

    def test_add_gate_input_routes_to_add_input(self):
        nl = Netlist()
        nl.add_gate("a", GateType.INPUT)
        assert "a" in nl.inputs

    def test_forward_references_allowed(self, xor_circuit):
        nl = Netlist()
        nl.add_gate("y", GateType.NOT, ["a"])  # 'a' not yet defined
        nl.add_input("a")
        nl.set_outputs(["y"])
        nl.validate()

    def test_validate_catches_dangling(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("y", GateType.AND, ["a", "ghost"])
        nl.set_outputs(["y"])
        with pytest.raises(NetlistError, match="ghost"):
            nl.validate()

    def test_validate_catches_missing_output(self):
        nl = Netlist()
        nl.add_input("a")
        nl.set_outputs(["nope"])
        with pytest.raises(NetlistError):
            nl.validate()

    def test_cycle_detection(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("u", GateType.AND, ["a", "v"])
        nl.add_gate("v", GateType.AND, ["a", "u"])
        nl.set_outputs(["v"])
        with pytest.raises(NetlistError, match="cycle"):
            nl.topological_order()

    def test_fresh_name_unique(self, xor_circuit):
        n1 = xor_circuit.fresh_name()
        assert n1 not in xor_circuit.nets
        xor_circuit.add_gate(n1, GateType.NOT, ["a"])
        n2 = xor_circuit.fresh_name()
        assert n2 != n1


class TestQueries:
    def test_topological_order_respects_edges(self, xor_circuit):
        order = xor_circuit.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for g in xor_circuit.gates():
            for f in g.fanin:
                assert pos[f] < pos[g.name]

    def test_levels_and_depth(self, xor_circuit):
        lev = xor_circuit.levels()
        assert lev["a"] == 0
        assert lev["na"] == 1
        assert lev["t2"] == 2
        assert lev["y"] == 3
        assert xor_circuit.depth() == 3

    def test_fanout_map(self, xor_circuit):
        fan = xor_circuit.fanout_map()
        assert set(fan["a"]) == {"na", "t1"}
        assert fan["y"] == []

    def test_transitive_fanin(self, xor_circuit):
        cone = xor_circuit.transitive_fanin(["t1"])
        assert cone == {"t1", "a", "nb", "b"}

    def test_transitive_fanout(self, xor_circuit):
        cone = xor_circuit.transitive_fanout(["na"])
        assert cone == {"na", "t2", "y"}

    def test_num_gates_conventions(self, xor_circuit):
        assert xor_circuit.num_gates() == 5
        assert xor_circuit.num_gates(count_inverters=False) == 3

    def test_contains_and_len(self, xor_circuit):
        assert "y" in xor_circuit
        assert "zz" not in xor_circuit
        assert len(xor_circuit) == 7

    def test_stats(self, xor_circuit):
        s = xor_circuit.stats()
        assert s["inputs"] == 2
        assert s["outputs"] == 1
        assert s["depth"] == 3
        assert s["n_and"] == 2


class TestEvaluation:
    def test_xor_truth_table(self, xor_circuit):
        for a in (0, 1):
            for b in (0, 1):
                out = xor_circuit.evaluate_outputs({"a": a, "b": b})
                assert out["y"] == a ^ b

    def test_missing_input_raises(self, xor_circuit):
        with pytest.raises(NetlistError):
            xor_circuit.evaluate({"a": 1})

    def test_constants(self):
        nl = Netlist()
        nl.add_gate("one", GateType.CONST1)
        nl.add_gate("zero", GateType.CONST0)
        nl.add_gate("y", GateType.AND, ["one", "zero"])
        nl.set_outputs(["y"])
        assert nl.evaluate_outputs({})["y"] == 0


class TestMutation:
    def test_replace_gate_keeps_fanout(self, xor_circuit):
        xor_circuit.replace_gate("y", GateType.AND, ("t1", "t2"))
        assert xor_circuit.gate("y").gtype is GateType.AND
        out = xor_circuit.evaluate_outputs({"a": 1, "b": 0})
        assert out["y"] == 0  # AND(t1=1, t2=0)

    def test_replace_input_with_const(self, xor_circuit):
        xor_circuit.replace_gate("a", GateType.CONST1, ())
        assert "a" not in xor_circuit.inputs
        assert xor_circuit.evaluate_outputs({"b": 0})["y"] == 1

    def test_rename_net_updates_everything(self, xor_circuit):
        xor_circuit.rename_net("t1", "term_one")
        assert "t1" not in xor_circuit
        assert "term_one" in xor_circuit.gate("y").fanin
        assert xor_circuit.evaluate_outputs({"a": 1, "b": 0})["y"] == 1

    def test_rename_output(self, xor_circuit):
        xor_circuit.rename_net("y", "out")
        assert xor_circuit.outputs == ["out"]

    def test_rename_to_existing_rejected(self, xor_circuit):
        with pytest.raises(NetlistError):
            xor_circuit.rename_net("t1", "t2")

    def test_remove_gate(self, xor_circuit):
        xor_circuit.remove_gate("y")
        assert "y" not in xor_circuit
        assert xor_circuit.outputs == []

    def test_copy_is_independent(self, xor_circuit):
        cp = xor_circuit.copy("copy")
        cp.replace_gate("y", GateType.AND, ("t1", "t2"))
        assert xor_circuit.gate("y").gtype is GateType.OR
        assert cp.name == "copy"

    def test_prune_dangling(self, xor_circuit):
        xor_circuit.add_gate("dead", GateType.AND, ["a", "b"])
        removed = xor_circuit.prune_dangling()
        assert removed == 1
        assert "dead" not in xor_circuit
        # inputs are never pruned
        assert set(xor_circuit.inputs) == {"a", "b"}

    def test_prune_keeps_requested(self, xor_circuit):
        xor_circuit.add_gate("keepme", GateType.AND, ["a", "b"])
        removed = xor_circuit.prune_dangling(keep=["keepme"])
        assert removed == 0

    def test_map_nets(self, xor_circuit):
        mapped = xor_circuit.map_nets(lambda n: f"p_{n}")
        assert "p_y" in mapped.outputs
        assert mapped.evaluate_outputs({"p_a": 1, "p_b": 1})["p_y"] == 0
