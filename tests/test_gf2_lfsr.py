"""Tests for GF(2) algebra, the LFSR, and key-sequence planning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orap import (
    LFSR,
    LFSRConfig,
    ReseedSchedule,
    SymbolicLFSR,
    bits_to_mask,
    default_taps,
    evaluate_symbolic,
    final_state,
    gf2_matmul,
    gf2_matvec,
    gf2_rank,
    gf2_solve,
    identity_rows,
    mask_to_bits,
    plan_key_sequence,
    popcount,
)
from repro.orap.schedule import PlanningError


class TestGF2:
    @given(st.integers(0, 2**20), st.integers(1, 24))
    @settings(max_examples=30, deadline=None)
    def test_mask_bits_roundtrip(self, mask, n):
        mask &= (1 << n) - 1
        assert bits_to_mask(mask_to_bits(mask, n)) == mask

    def test_identity_rank(self):
        assert gf2_rank(identity_rows(8)) == 8

    def test_dependent_rows_rank(self):
        rows = [0b101, 0b011, 0b110]  # third = first xor second
        assert gf2_rank(rows) == 2

    @given(st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_solve_vs_bruteforce(self, seed):
        rng = random.Random(seed)
        n_cols = rng.randint(1, 7)
        n_rows = rng.randint(1, 7)
        rows = [rng.randrange(1 << n_cols) for _ in range(n_rows)]
        rhs = [rng.randrange(2) for _ in range(n_rows)]
        x = gf2_solve(rows, rhs, n_cols)
        brute = None
        for m in range(1 << n_cols):
            cand = [(m >> i) & 1 for i in range(n_cols)]
            if gf2_matvec(rows, cand) == rhs:
                brute = cand
                break
        if x is None:
            assert brute is None
        else:
            assert gf2_matvec(rows, x) == rhs

    def test_solve_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve([1], [1, 0], 2)

    def test_matmul_identity(self):
        rows = [0b01, 0b11, 0b10]
        assert gf2_matmul(rows, identity_rows(2)) == rows

    def test_popcount(self):
        assert popcount(0b1011) == 3
        assert popcount(0) == 0


class TestLFSRStructure:
    def test_default_taps_every_8(self):
        taps = default_taps(256)
        assert taps[0] == 8
        assert all(b - a == 8 for a, b in zip(taps, taps[1:]))
        assert len(taps) == 31

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LFSRConfig(size=8, taps=(9,))
        with pytest.raises(ValueError):
            LFSRConfig(size=8, reseed_points=(8,))
        with pytest.raises(ValueError):
            LFSRConfig(size=8, reseed_points=(1, 1))
        with pytest.raises(ValueError):
            default_taps(1)

    def test_default_reseed_all_cells(self):
        cfg = LFSRConfig(size=16)
        assert cfg.reseed_points == tuple(range(16))
        assert cfg.n_reseed == 16

    def test_xor_gate_count(self):
        cfg = LFSRConfig(size=16, taps=(8,), reseed_points=(0, 4, 8))
        assert cfg.xor_gate_count() == 4


class TestLFSRBehaviour:
    def test_clear(self):
        cfg = LFSRConfig(size=6)
        lfsr = LFSR(cfg, [1, 0, 1, 1, 0, 1])
        lfsr.clear()
        assert lfsr.state == [0] * 6

    def test_shift_moves_bits(self):
        cfg = LFSRConfig(size=4, taps=(1,), reseed_points=(0,))
        lfsr = LFSR(cfg, [1, 0, 0, 0])
        lfsr.step([0])
        # feedback = old state[3] = 0; shift: [0, 1^0, 0, 0]
        assert lfsr.state == [0, 1, 0, 0]

    def test_feedback_wraps_and_taps(self):
        cfg = LFSRConfig(size=4, taps=(2,), reseed_points=(0,))
        lfsr = LFSR(cfg, [0, 0, 0, 1])
        lfsr.step([0])
        # fb = 1 -> cell0 = 1; cell2 = old cell1 ^ fb = 1
        assert lfsr.state == [1, 0, 1, 0]

    def test_seed_injection(self):
        cfg = LFSRConfig(size=4, taps=(1,), reseed_points=(0, 2))
        lfsr = LFSR(cfg)
        lfsr.step([1, 1])
        assert lfsr.state == [1, 0, 1, 0]

    def test_wrong_seed_width_rejected(self):
        lfsr = LFSR(LFSRConfig(size=4))
        with pytest.raises(ValueError):
            lfsr.step([1])

    def test_no_feedback_mode(self):
        cfg = LFSRConfig(size=4, taps=(1,), feedback=False)
        lfsr = LFSR(cfg, [0, 0, 0, 1])
        lfsr.step([0, 0, 0, 0])
        assert lfsr.state == [0, 0, 0, 0]  # bit fell off the end

    def test_zero_state_stays_zero_on_free_run(self):
        lfsr = LFSR(LFSRConfig(size=8))
        lfsr.step(None)
        assert lfsr.state == [0] * 8

    def test_run_applies_sequence(self):
        cfg = LFSRConfig(size=4, taps=(1,), reseed_points=(0,))
        lfsr = LFSR(cfg)
        final = lfsr.run([[1], None, None])
        l2 = LFSR(cfg)
        l2.step([1])
        l2.step(None)
        l2.step(None)
        assert final == l2.state


class TestSymbolicLFSR:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_symbolic_matches_concrete(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 20)
        points = tuple(sorted(rng.sample(range(n), rng.randint(1, n))))
        cfg = LFSRConfig(size=n, reseed_points=points)
        sym = SymbolicLFSR(cfg)
        conc = LFSR(cfg)
        var_values = []
        for _ in range(rng.randint(1, 10)):
            if rng.random() < 0.7:
                bits = [rng.randrange(2) for _ in points]
                var_values.extend(bits)
                conc.step(bits)
                sym.step_symbolic(True)
            else:
                conc.step(None)
                sym.step_symbolic(False)
        assert evaluate_symbolic(sym.cells, var_values) == conc.state

    def test_xor_tree_count_grows_with_seeds(self):
        cfg = LFSRConfig(size=32)
        sizes = []
        for n_seeds in (1, 2, 4):
            sym = SymbolicLFSR(cfg)
            for _ in range(n_seeds):
                sym.step_symbolic(True)
            sizes.append(sym.xor_tree_gate_count())
        assert sizes[0] < sizes[1] < sizes[2]

    def test_lfsr_mixes_more_than_shift_register(self):
        # the paper's rationale for an LFSR key register
        for_fb = []
        for feedback in (True, False):
            cfg = LFSRConfig(size=32, feedback=feedback)
            sym = SymbolicLFSR(cfg)
            for i in range(8):
                sym.step_symbolic(i % 2 == 0)
            for_fb.append(sym.xor_tree_gate_count())
        assert for_fb[0] > for_fb[1]


class TestPlanning:
    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_basic_plan_reaches_target(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 32)
        cfg = LFSRConfig(size=n)
        sched = ReseedSchedule.randomized(n_seeds=rng.randint(1, 4), rng=seed)
        target = [rng.randrange(2) for _ in range(n)]
        seq = plan_key_sequence(cfg, sched, target, rng=seed)
        assert final_state(cfg, seq) == target

    def test_modified_plan_with_responses(self):
        rng = random.Random(1)
        n = 16
        cfg = LFSRConfig(size=n)
        pts = list(cfg.reseed_points)
        resp = pts[1::2]
        mem = [p for p in pts if p not in resp]
        sched = ReseedSchedule.randomized(n_seeds=4, rng=2)
        responses = [[rng.randrange(2) for _ in resp] for _ in range(sched.n_cycles)]
        target = [rng.randrange(2) for _ in range(n)]
        seq = plan_key_sequence(
            cfg, sched, target, memory_points=mem,
            response_stream=responses, response_points=resp, rng=3,
        )
        got = final_state(
            cfg, seq, memory_points=mem, response_stream=responses,
            response_points=resp,
        )
        assert got == target
        # perturbing the response stream breaks unlocking (threat-e defense)
        bad = [list(r) for r in responses]
        bad[0][0] ^= 1
        assert (
            final_state(cfg, seq, memory_points=mem, response_stream=bad,
                        response_points=resp)
            != target
        )

    def test_plan_randomization_differs(self):
        cfg = LFSRConfig(size=12)
        sched = ReseedSchedule.regular(n_seeds=2)
        target = [1] * 12
        s1 = plan_key_sequence(cfg, sched, target, rng=1)
        s2 = plan_key_sequence(cfg, sched, target, rng=2)
        assert s1.words != s2.words
        assert final_state(cfg, s1) == final_state(cfg, s2) == target

    def test_rank_deficiency_raises(self):
        # single seed through 1 reseed point cannot reach most 8-bit keys
        cfg = LFSRConfig(size=8, reseed_points=(0,))
        sched = ReseedSchedule.regular(n_seeds=1)
        with pytest.raises(PlanningError):
            plan_key_sequence(cfg, sched, [1] * 8, rng=0)

    def test_schedule_shapes(self):
        s = ReseedSchedule.regular(n_seeds=3, gap=2, tail=1)
        assert s.n_seed_cycles == 3
        assert s.n_cycles == 3 + 2 * 2 + 1
        s2 = ReseedSchedule.randomized(n_seeds=3, rng=0)
        assert s2.n_seed_cycles == 3

    def test_word_stream_alignment(self):
        cfg = LFSRConfig(size=8)
        sched = ReseedSchedule.regular(n_seeds=2, gap=1)
        seq = plan_key_sequence(cfg, sched, [0] * 8, rng=0)
        stream = seq.word_stream()
        assert len(stream) == sched.n_cycles
        assert stream[1] is None  # the gap cycle
        assert stream[0] is not None and stream[2] is not None

    def test_response_stream_validation(self):
        cfg = LFSRConfig(size=8)
        sched = ReseedSchedule.regular(n_seeds=2)
        with pytest.raises(ValueError):
            plan_key_sequence(
                cfg, sched, [0] * 8, response_points=(1,), rng=0
            )
