"""Tests for the structural Verilog reader (round-trips with the writer)."""

import pytest

from repro.bench import (
    GeneratorConfig,
    c17,
    generate_netlist,
    mini_alu,
    ripple_adder,
    s27_like,
)
from repro.locking import WLLConfig, lock_weighted
from repro.netlist import NetlistError, parse_verilog, write_verilog
from repro.sim import circuits_equal_on_patterns


class TestCombinationalRoundtrip:
    @pytest.mark.parametrize(
        "maker", [c17, lambda: ripple_adder(4), lambda: mini_alu(3)]
    )
    def test_fixture_roundtrips(self, maker):
        nl = maker()
        back = parse_verilog(write_verilog(nl), name=nl.name)
        assert not back.flops
        assert back.core.outputs == nl.outputs
        assert circuits_equal_on_patterns(nl, back.core, n_patterns=128)

    def test_random_circuit_roundtrips(self):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=90, depth=6, seed=21, name="vr"
            )
        )
        back = parse_verilog(write_verilog(nl), name=nl.name)
        assert circuits_equal_on_patterns(nl, back.core, n_patterns=256)

    def test_locked_netlist_roundtrips(self):
        nl = generate_netlist(
            GeneratorConfig(
                n_inputs=10, n_outputs=8, n_gates=90, depth=6, seed=21, name="vl"
            )
        )
        lc = lock_weighted(
            nl, WLLConfig(key_width=6, control_width=3, n_key_gates=2), rng=1
        )
        back = parse_verilog(write_verilog(lc.locked), name="locked")
        assert circuits_equal_on_patterns(
            lc.locked, back.core, n_patterns=256
        )

    def test_escaped_names_roundtrip(self):
        from repro.netlist import GateType, Netlist

        nl = Netlist("esc")
        nl.add_input("a[0]")
        nl.add_input("b.x")
        nl.add_gate("y$z", GateType.AND, ["a[0]", "b.x"])
        nl.set_outputs(["y$z"])
        back = parse_verilog(write_verilog(nl), name="esc")
        assert set(back.core.inputs) == {"a[0]", "b.x"}
        assert circuits_equal_on_patterns(nl, back.core, n_patterns=4)


class TestSequentialRoundtrip:
    def test_s27_roundtrips(self):
        seq = s27_like()
        back = parse_verilog(write_verilog(seq))
        assert len(back.flops) == len(seq.flops)
        pi = {"G0": 1, "G1": 0, "G2": 1, "G3": 0}
        s1, s2 = seq.reset_state(), back.reset_state()
        for _ in range(6):
            s1, po1 = seq.next_state(s1, pi)
            s2, po2 = back.next_state(s2, pi)
            assert po1 == po2


class TestErrors:
    def test_no_module(self):
        with pytest.raises(NetlistError):
            parse_verilog("wire x;")

    def test_missing_endmodule(self):
        with pytest.raises(NetlistError):
            parse_verilog("module m (a); input a;")

    def test_unsupported_statement(self):
        with pytest.raises(NetlistError, match="unsupported"):
            parse_verilog(
                "module m (a, y); input a; output y;\n"
                "initial y = 0;\nendmodule"
            )
