"""Campaign job service: schema, queue, daemon end-to-end.

Three layers, matching the package:

* wire schema — round-trip + closed-catalog validation for every v1
  message type and every journal event;
* queue — submit/dedup/fair-share/budget/recovery without a daemon;
* daemon — a live ``repro serve`` subprocess driven over its socket:
  submit→status→result happy path, duplicate-submit dedup, cancel
  mid-run, and SIGTERM drain + restart resuming from checkpoints to a
  byte-identical result.

The daemon tests use the diagnostic ``sleep`` campaign (checkpointed
rows that each sleep a fraction of a second) so mid-run states are
reachable deterministically without burning CI minutes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    ERROR_CODES,
    JOURNAL_EVENTS,
    JobQueue,
    JobSpec,
    JobStatus,
    ServiceClient,
    ServiceError,
    SchemaError,
    execute_job,
    job_content_key,
    list_campaigns,
    parse_request,
    parse_response,
    validate_journal,
    validate_journal_record,
    validate_message,
)
from repro.service.api import (
    MESSAGE_TYPES,
    CancelRequest,
    CancelResponse,
    ErrorResponse,
    JobsRequest,
    JobsResponse,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmitResponse,
)
from repro.service.jobs import ParamError, UnknownCampaign, get_campaign
from repro.service.queue import BudgetExhausted, UnknownJob

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _status(**overrides) -> JobStatus:
    base = dict(
        job_id="j00001",
        campaign="sleep",
        tenant="default",
        state="done",
        content_key="ab" * 16,
        submitted_ts=100.0,
        started_ts=101.0,
        finished_ts=102.0,
        rows_done=4,
        rows_total=4,
    )
    base.update(overrides)
    return JobStatus(**base)


def _sample(cls):
    """One representative instance per v1 message type."""
    spec = JobSpec(campaign="sleep", params={"rows": 2}, tenant="acme")
    return {
        SubmitRequest: SubmitRequest(spec=spec),
        StatusRequest: StatusRequest(job_id="j00001"),
        ResultRequest: ResultRequest(job_id="j00001"),
        CancelRequest: CancelRequest(job_id="j00001"),
        JobsRequest: JobsRequest(tenant="acme"),
        SubmitResponse: SubmitResponse(job=_status(state="queued")),
        StatusResponse: StatusResponse(job=_status(state="running")),
        ResultResponse: ResultResponse(
            job_id="j00001",
            state="done",
            rows=[{"index": 0, "seconds": 0.1}],
            text="sleep campaign\n",
        ),
        CancelResponse: CancelResponse(job=_status(state="cancelled")),
        JobsResponse: JobsResponse(jobs=(_status(), _status(job_id="j00002"))),
        ErrorResponse: ErrorResponse("unknown-job", "no job 'j99999'"),
    }[cls]


class TestWireSchema:
    @pytest.mark.parametrize("cls", MESSAGE_TYPES, ids=lambda c: c.__name__)
    def test_every_message_round_trips(self, cls):
        message = _sample(cls)
        wire = message.to_wire()
        # the wire form survives JSON and stays schema-valid
        wire = json.loads(json.dumps(wire))
        assert validate_message(wire) is None
        if "ok" in wire:
            decoded = parse_response(wire)
        else:
            decoded = parse_request(wire)
        assert decoded == message

    def test_version_is_mandatory(self):
        wire = _sample(StatusRequest).to_wire()
        wire["v"] = "v2"
        assert "version" in validate_message(wire)
        del wire["v"]
        assert validate_message(wire) is not None

    def test_unknown_op_rejected(self):
        assert "unknown request op" in validate_message(
            {"v": "v1", "op": "reboot"}
        )
        assert "unknown response op" in validate_message(
            {"v": "v1", "ok": True, "op": "reboot"}
        )

    def test_missing_required_field_rejected(self):
        assert "job_id" in validate_message({"v": "v1", "op": "status"})

    def test_wrong_field_type_rejected(self):
        err = validate_message({"v": "v1", "op": "status", "job_id": 7})
        assert "job_id" in err and "int" in err

    def test_bad_job_state_rejected(self):
        wire = _sample(StatusResponse).to_wire()
        wire["job"]["state"] = "exploded"
        assert "exploded" in validate_message(wire)

    def test_unknown_error_code_rejected(self):
        wire = ErrorResponse("unknown-job", "x").to_wire()
        wire["code"] = "flaked"
        assert "flaked" in validate_message(wire)
        # and the catalog itself stays closed
        assert "budget-exhausted" in ERROR_CODES

    def test_parse_request_rejects_response_envelope(self):
        with pytest.raises(SchemaError, match="response envelope"):
            parse_request(_sample(SubmitResponse).to_wire())
        with pytest.raises(SchemaError, match="request envelope"):
            parse_response(_sample(SubmitRequest).to_wire())

    def test_submit_params_keys_must_be_strings(self):
        wire = _sample(SubmitRequest).to_wire()
        wire["params"] = {1: 2}
        assert validate_message(wire) is not None

    def test_jobspec_tenant_defaults(self):
        spec = JobSpec.from_wire({"campaign": "sleep"})
        assert spec.tenant == "default" and spec.params == {}


class TestJournalSchema:
    def _record(self, event, **fields):
        return {"v": "v1", "ts": 123.0, "event": event, **fields}

    @pytest.mark.parametrize("event", sorted(JOURNAL_EVENTS))
    def test_every_event_validates(self, event):
        samples = {
            "boot": dict(pid=1, protocol="v1"),
            "submit": dict(
                job="j00001", campaign="sleep", tenant="default",
                content_key="ab" * 16,
            ),
            "dedup": dict(job="j00002", of="j00001"),
            "start": dict(job="j00001", attempt=1, pid=42),
            "done": dict(job="j00001", elapsed_s=1.5),
            "failed": dict(job="j00001", error="boom"),
            "cancel": dict(job="j00001"),
            "requeue": dict(job="j00001", reason="drain"),
            "budget": dict(tenant="acme", charged_s=1.0, remaining_s=9.0),
            "drain": dict(queued=1, running=2),
        }
        assert validate_journal_record(self._record(event, **samples[event])) is None

    def test_unknown_event_rejected(self):
        assert "unknown journal event" in validate_journal_record(
            self._record("reboot")
        )

    def test_missing_field_rejected(self):
        assert validate_journal_record(self._record("dedup", job="j1")) is not None

    def test_validate_journal_reports_torn_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps(self._record("cancel", job="j00001"))
        path.write_text(good + "\n" + '{"v": "v1", "ts": 1.0, "ev')
        errors = list(validate_journal(path))
        assert len(errors) == 1 and errors[0][0] == 2


class TestContentKeys:
    def test_defaults_applied_before_keying(self):
        implicit = job_content_key(JobSpec("sleep", {}))
        explicit = job_content_key(JobSpec("sleep", {"rows": 4, "seconds": 0.1}))
        assert implicit == explicit

    def test_tenant_not_part_of_identity(self):
        a = job_content_key(JobSpec("sleep", {}, tenant="a"))
        b = job_content_key(JobSpec("sleep", {}, tenant="b"))
        assert a == b

    def test_param_change_changes_key(self):
        a = job_content_key(JobSpec("sleep", {"rows": 4}))
        b = job_content_key(JobSpec("sleep", {"rows": 5}))
        assert a != b

    def test_unknown_campaign_rejected(self):
        with pytest.raises(UnknownCampaign, match="sleep"):
            job_content_key(JobSpec("nope", {}))

    def test_unknown_param_rejected(self):
        with pytest.raises(ParamError, match="bogus"):
            job_content_key(JobSpec("sleep", {"bogus": 1}))

    def test_wrong_param_type_rejected(self):
        with pytest.raises(ParamError, match="rows"):
            job_content_key(JobSpec("sleep", {"rows": "four"}))

    def test_registry_catalog(self):
        assert set(list_campaigns()) >= {"table1", "table2", "attacks", "sleep"}
        assert get_campaign("table1").experiment == "table1"


class TestExecuteJob:
    def test_sleep_campaign_runs_and_renders(self, tmp_path):
        from repro.experiments import RunPolicy

        policy = RunPolicy(checkpoint_dir=tmp_path / "ck", resume=True)
        result = execute_job(
            JobSpec("sleep", {"rows": 2, "seconds": 0.01}), policy
        )
        assert len(result.rows) == 2
        assert "2 row(s) ok" in result.text
        # rows checkpointed under the campaign's experiment name
        assert len(list((tmp_path / "ck" / "sleep").glob("row-*.json"))) == 2


class TestJobQueue:
    def test_submit_status_progression(self, tmp_path):
        q = JobQueue(tmp_path)
        status, deduped = q.submit(JobSpec("sleep", {"rows": 2}))
        assert status.state == "queued" and not deduped
        assert status.rows_total == 2
        job = q.next_job()
        assert job.job_id == status.job_id
        q.mark_running(job.job_id, pid=123)
        done = q.mark_done(job.job_id, elapsed_s=0.5)
        assert done.state == "done" and done.finished_ts is not None
        with pytest.raises(UnknownJob):
            q.get("j99999")

    def test_dedup_requires_result_payload(self, tmp_path):
        q = JobQueue(tmp_path)
        s1, _ = q.submit(JobSpec("sleep", {"rows": 2}))
        q.mark_running(s1.job_id, pid=1)
        q.mark_done(s1.job_id, elapsed_s=0.1)
        # no result file on disk yet -> an identical submit must rerun
        s2, deduped = q.submit(JobSpec("sleep", {"rows": 2}))
        assert not deduped and s2.state == "queued"
        q.result_path(s1.content_key).write_text(
            json.dumps({"v": "v1", "rows": [], "text": ""})
        )
        s3, deduped = q.submit(JobSpec("sleep", {"rows": 2}))
        assert deduped and s3.state == "done"
        assert s3.deduped_from == s1.job_id

    def test_fair_share_round_robin(self, tmp_path):
        q = JobQueue(tmp_path)
        # tenant a floods the queue first; tenant b submits one job
        a1, _ = q.submit(JobSpec("sleep", {"rows": 1}, tenant="a"))
        a2, _ = q.submit(JobSpec("sleep", {"rows": 2}, tenant="a"))
        a3, _ = q.submit(JobSpec("sleep", {"rows": 3}, tenant="a"))
        b1, _ = q.submit(JobSpec("sleep", {"rows": 4}, tenant="b"))
        order = []
        while (job := q.next_job()) is not None:
            order.append(job.job_id)
            q.mark_running(job.job_id, pid=1)
            q.mark_done(job.job_id, elapsed_s=0.0)
        # b's single job is served second, not fourth
        assert order[0] == a1.job_id
        assert order[1] == b1.job_id
        assert order[2:] == [a2.job_id, a3.job_id]

    def test_budget_exhaustion(self, tmp_path):
        q = JobQueue(tmp_path, budget_s=10.0)
        s1, _ = q.submit(JobSpec("sleep", {"rows": 1}, tenant="acme"))
        q.mark_running(s1.job_id, pid=1)
        q.mark_done(s1.job_id, elapsed_s=11.0)  # blows the budget
        assert q.ledger.exhausted("acme")
        with pytest.raises(BudgetExhausted, match="acme"):
            q.submit(JobSpec("sleep", {"rows": 2}, tenant="acme"))
        # other tenants are unaffected
        other, _ = q.submit(JobSpec("sleep", {"rows": 2}, tenant="other"))
        assert other.state == "queued"

    def test_budget_ledger_survives_restart(self, tmp_path):
        q = JobQueue(tmp_path, budget_s=10.0)
        s1, _ = q.submit(JobSpec("sleep", {"rows": 1}, tenant="acme"))
        q.mark_running(s1.job_id, pid=1)
        q.mark_done(s1.job_id, elapsed_s=11.0)
        q2 = JobQueue(tmp_path, budget_s=10.0)
        assert q2.ledger.exhausted("acme")

    def test_recovery_requeues_running_jobs(self, tmp_path):
        q = JobQueue(tmp_path)
        s1, _ = q.submit(JobSpec("sleep", {"rows": 2}))
        q.mark_running(s1.job_id, pid=1)
        # daemon dies here; a new queue over the same state dir recovers
        q2 = JobQueue(tmp_path)
        recovered = q2.get(s1.job_id)
        assert recovered.state == "queued"
        assert recovered.attempts == 1  # the lost attempt stays counted
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert events[-1] == "requeue"

    def test_journal_is_schema_valid(self, tmp_path):
        q = JobQueue(tmp_path, budget_s=100.0)
        s1, _ = q.submit(JobSpec("sleep", {"rows": 1}))
        q.mark_running(s1.job_id, pid=1)
        q.mark_failed(s1.job_id, "boom", elapsed_s=1.0)
        q.journal("boot", pid=os.getpid(), protocol="v1")
        q.journal("drain", queued=0, running=0)
        assert list(validate_journal(tmp_path / "journal.jsonl")) == []


# --------------------------------------------------------------------- #
# live daemon


@pytest.fixture
def daemon_factory(tmp_path):
    """Boot ``repro serve`` subprocesses against one shared state dir."""
    procs = []
    state = tmp_path / "state"

    def boot(**flags):
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state),
            "--workers", str(flags.pop("workers", 2)),
        ]
        for key, value in flags.items():
            argv += [f"--{key.replace('_', '-')}", str(value)]
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        procs.append(proc)
        client = ServiceClient(state / "serve.sock")
        client.wait_ready(timeout_s=30)
        return proc, client

    yield boot
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _drain(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    return proc.wait(timeout=60)


class TestDaemonEndToEnd:
    def test_submit_status_result_happy_path(self, daemon_factory):
        proc, client = daemon_factory()
        job = client.submit("sleep", {"rows": 3, "seconds": 0.05})
        assert job.state in ("queued", "running")
        assert job.rows_total == 3
        done = client.wait(job.job_id, timeout_s=60)
        assert done.state == "done"
        assert done.rows_done == 3
        result = client.result(job.job_id)
        assert result.state == "done"
        assert len(result.rows) == 3
        assert "3 row(s) ok" in result.text
        # the daemon answers schema-garbage with a structured error
        raw = client.request_raw({"v": "v1", "op": "status"})
        assert raw["ok"] is False and raw["code"] == "bad-request"
        assert _drain(proc) == 0

    def test_duplicate_submit_dedups_on_content_key(self, daemon_factory):
        proc, client = daemon_factory()
        first = client.submit("sleep", {"rows": 2, "seconds": 0.05})
        done = client.wait(first.job_id, timeout_s=60)
        assert done.state == "done"
        # identical params (modulo defaults + tenant) dedupe instantly
        second = client.submit(
            "sleep", {"rows": 2, "seconds": 0.05}, tenant="other"
        )
        assert second.state == "done"
        assert second.deduped_from == first.job_id
        assert client.result(second.job_id).text == client.result(
            first.job_id
        ).text
        _drain(proc)
        state_dir = Path(client.socket_path).parent
        events = [
            json.loads(line)["event"]
            for line in (state_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert "dedup" in events
        assert list(validate_journal(state_dir / "journal.jsonl")) == []

    def test_bad_submits_are_structured_errors(self, daemon_factory):
        proc, client = daemon_factory()
        with pytest.raises(ServiceError) as err:
            client.submit("nope", {})
        assert err.value.code == "unknown-campaign"
        with pytest.raises(ServiceError) as err:
            client.submit("sleep", {"bogus": 1})
        assert err.value.code == "bad-params"
        with pytest.raises(ServiceError) as err:
            client.result("j99999")
        assert err.value.code == "unknown-job"
        job = client.submit("sleep", {"rows": 2, "seconds": 0.05})
        client.wait(job.job_id, timeout_s=60)
        with pytest.raises(ServiceError) as err:
            client.cancel(job.job_id)
        assert err.value.code == "uncancellable"

    def test_cancel_mid_run_keeps_partial_progress(self, daemon_factory):
        proc, client = daemon_factory()
        job = client.submit("sleep", {"rows": 40, "seconds": 0.25})
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.status(job.job_id)
            if status.state == "running" and (status.rows_done or 0) >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("job never started making progress")
        client.cancel(job.job_id)
        final = client.wait(job.job_id, timeout_s=60)
        assert final.state == "cancelled"
        # completed rows were checkpointed before the child exited
        assert final.rows_done >= 1
        assert final.rows_done < 40
        result = client.result(job.job_id)
        assert result.state == "cancelled" and result.rows is None

    def test_drain_restart_resumes_to_identical_result(
        self, daemon_factory, tmp_path
    ):
        proc, client = daemon_factory()
        job = client.submit("sleep", {"rows": 12, "seconds": 0.25})
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.status(job.job_id)
            if status.state == "running" and (status.rows_done or 0) >= 2:
                break
            time.sleep(0.1)
        else:
            pytest.fail("job never started making progress")
        assert _drain(proc) == 0
        mid = JobQueue(Path(client.socket_path).parent).get(job.job_id)
        assert mid.state == "queued"  # requeued at its checkpointed rows
        rows_at_drain = mid.rows_done or 0
        assert 0 < rows_at_drain < 12
        proc2, client2 = daemon_factory()
        final = client2.wait(job.job_id, timeout_s=120)
        assert final.state == "done" and final.rows_done == 12
        resumed = client2.result(job.job_id)
        # byte-identical to an uninterrupted local run of the same spec
        from repro.experiments import RunPolicy

        direct = execute_job(
            JobSpec("sleep", {"rows": 12, "seconds": 0.25}),
            RunPolicy(checkpoint_dir=tmp_path / "direct-ck", resume=True),
        )
        assert resumed.text == direct.text
        assert resumed.rows == direct.rows


class TestJobCli:
    def test_parse_params_json_typed(self):
        from repro.service.cli import parse_params

        params = parse_params(
            ["rows=4", "seconds=0.5", 'circuits=["b20","b21"]', "variant=basic"]
        )
        assert params == {
            "rows": 4,
            "seconds": 0.5,
            "circuits": ["b20", "b21"],
            "variant": "basic",
        }
        with pytest.raises(ValueError, match="key=value"):
            parse_params(["oops"])


class TestUnifiedRuntimeFlags:
    CAMPAIGNS = [
        "table1", "table2", "attacks", "trojans", "protocol", "ablations",
        "arms-race", "scaling", "hd-sweep", "all", "serve",
    ]
    UNIFIED = ["jobs", "trace", "sim_backend", "max_matrix_bytes", "cache", "cache_dir"]

    @pytest.mark.parametrize("cmd", CAMPAIGNS)
    def test_every_campaign_parser_accepts_the_unified_set(self, cmd):
        """One `add_runtime_flags` helper ⇒ identical flags everywhere."""
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            [
                cmd, "--jobs", "2", "--trace", "t.jsonl", "--sim-backend",
                "fused", "--max-matrix-bytes", "1048576", "--no-cache",
                "--cache-dir", "x",
            ]
        )
        assert args.jobs == 2
        assert args.trace == "t.jsonl"
        assert args.sim_backend == "fused"
        assert args.max_matrix_bytes == 1048576
        assert args.cache is False
        assert args.cache_dir == "x"

    def test_row_policy_flags_on_runner_campaigns(self):
        from repro.__main__ import build_parser

        for cmd in ("table1", "table2", "attacks"):
            args = build_parser().parse_args(
                [cmd, "--resume", "--retries", "1", "--row-deadline", "5",
                 "--worker-retries", "2"]
            )
            assert args.resume and args.retries == 1
            assert args.row_deadline == 5.0 and args.worker_retries == 2
