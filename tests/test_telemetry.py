"""Telemetry subsystem: spans, counters, sinks, schema, report, fan-in."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import telemetry
from repro.experiments.runner import ExperimentRunner, RowTask, RunPolicy
from repro.telemetry import (
    KNOWN_COUNTERS,
    KNOWN_SPANS,
    JsonlSink,
    MemorySink,
    iter_trace,
    run_trace_cli,
    summarize_trace,
    validate_record,
    validate_trace,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry disabled."""
    telemetry.shutdown()
    yield
    telemetry.shutdown()


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()

    def test_span_is_noop_when_disabled(self):
        sp = telemetry.span("sat.solve", vars=3)
        assert sp is telemetry.NOOP_SPAN
        with sp as inner:
            assert inner.set(x=1) is inner  # chainable, no effect

    def test_counters_ignored_when_disabled(self):
        telemetry.counter_add("attack.dips", 5)
        assert telemetry.counter_totals() == {}

    def test_timed_span_measures_even_when_disabled(self):
        with telemetry.timed_span("bench.measure") as sp:
            time.sleep(0.01)
        assert sp.duration_s >= 0.005


class TestSpans:
    def test_span_record_shape(self):
        sink = MemorySink()
        telemetry.configure(sink)
        with telemetry.span("sat.solve", vars=7) as sp:
            sp.set(sat=True)
        (rec,) = sink.of_kind("span")
        assert rec["name"] == "sat.solve"
        assert rec["pid"] == os.getpid()
        assert rec["parent_id"] is None
        assert rec["attrs"] == {"vars": 7, "sat": True}
        assert rec["dur_s"] >= 0.0
        assert validate_record(rec) is None

    def test_span_nesting_links_parent_ids(self):
        sink = MemorySink()
        telemetry.configure(sink)
        with telemetry.span("attack.run") as outer:
            with telemetry.span("attack.sat.iteration", dip=0) as mid:
                with telemetry.span("sat.solve"):
                    pass
        spans = {r["name"]: r for r in sink.of_kind("span")}
        assert spans["sat.solve"]["parent_id"] == mid.span_id
        assert spans["attack.sat.iteration"]["parent_id"] == outer.span_id
        assert spans["attack.run"]["parent_id"] is None

    def test_current_span_tracks_stack(self):
        telemetry.configure(MemorySink())
        assert telemetry.current_span() is None
        with telemetry.span("attack.run") as sp:
            assert telemetry.current_span() is sp
        assert telemetry.current_span() is None

    def test_exception_annotates_and_propagates(self):
        sink = MemorySink()
        telemetry.configure(sink)
        with pytest.raises(RuntimeError):
            with telemetry.span("attack.run"):
                raise RuntimeError("boom")
        (rec,) = sink.of_kind("span")
        assert rec["attrs"]["error"] == "RuntimeError"


class TestCounters:
    def test_totals_accumulate_and_flush(self):
        sink = MemorySink()
        telemetry.configure(sink)
        telemetry.counter_add("attack.dips")
        telemetry.counter_add("attack.dips", 4)
        telemetry.gauge_set("sat.clauses", 12.0)
        assert telemetry.counter_totals() == {"attack.dips": 5}
        telemetry.flush_counters()
        (counter,) = sink.of_kind("counter")
        assert counter["name"] == "attack.dips" and counter["value"] == 5
        (gauge,) = sink.of_kind("gauge")
        assert gauge["name"] == "sat.clauses" and gauge["value"] == 12.0
        # flushed means cleared
        assert telemetry.counter_totals() == {}

    def test_shutdown_flushes_and_disables(self):
        sink = MemorySink()
        telemetry.configure(sink)
        telemetry.counter_add("attack.dips")
        telemetry.shutdown()
        assert not telemetry.enabled()
        assert sink.of_kind("counter")


class TestJsonlSink:
    def test_roundtrip_and_idempotent_configure(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = telemetry.configure(path=path)
        again = telemetry.configure(path=path)
        assert first is again  # same-path reconfigure is a no-op
        with telemetry.span("experiment.row", experiment="e", key="r0"):
            pass
        telemetry.shutdown()
        records = [r for _, r in iter_trace(path)]
        assert [r["kind"] for r in records] == ["span"]
        assert records[0]["attrs"]["key"] == "r0"

    def test_iter_trace_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"span"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(iter_trace(path))

    def test_failed_write_degrades_sink_not_the_run(self, tmp_path, monkeypatch):
        """Disk-full mid-campaign drops telemetry with one warning; the
        records already on disk stay intact and later writes are no-ops."""
        import errno

        path = tmp_path / "full.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "meta", "n": 1})

        def fail_write(fd, data):
            raise OSError(errno.ENOSPC, "no space left on device")

        with monkeypatch.context() as m:
            m.setattr("os.write", fail_write)
            with pytest.warns(RuntimeWarning, match="degraded after a failed"):
                sink.write({"kind": "meta", "n": 2})
        assert sink.degraded
        sink.write({"kind": "meta", "n": 3})  # dropped silently
        sink.close()
        assert len(path.read_text().splitlines()) == 1


class TestSchema:
    def _span(self, **over):
        rec = {
            "kind": "span",
            "name": "sat.solve",
            "ts": 1.0,
            "dur_s": 0.5,
            "pid": 1,
            "span_id": "1-1",
            "parent_id": None,
            "attrs": {},
        }
        rec.update(over)
        return rec

    def test_known_catalog_is_closed(self):
        assert "sat.solve" in KNOWN_SPANS
        assert "attack.dips" in KNOWN_COUNTERS

    def test_valid_span_passes(self):
        assert validate_record(self._span()) is None

    def test_unknown_span_name_rejected(self):
        err = validate_record(self._span(name="sat.mystery"))
        assert err is not None and "sat.mystery" in err

    def test_missing_field_rejected(self):
        rec = self._span()
        del rec["dur_s"]
        assert validate_record(rec) is not None

    def test_negative_duration_rejected(self):
        assert validate_record(self._span(dur_s=-1.0)) is not None

    def test_unknown_kind_rejected(self):
        assert validate_record({"kind": "wat"}) is not None

    def test_unknown_counter_rejected(self):
        rec = {
            "kind": "counter",
            "name": "not.a.counter",
            "value": 1,
            "ts": 1.0,
            "pid": 1,
        }
        assert validate_record(rec) is not None

    def test_validate_trace_reports_line_numbers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(self._span())
        bad = json.dumps(self._span(name="nope"))
        path.write_text(f"{good}\n{bad}\n")
        violations = list(validate_trace(path))
        assert len(violations) == 1 and violations[0][0] == 2


def _slow_row(tag: str) -> dict:
    """Module-level so it pickles into pool workers."""
    time.sleep(0.05)
    return {"tag": tag}


class TestRunnerFanIn:
    def test_parallel_workers_merge_into_one_valid_trace(self, tmp_path):
        trace = tmp_path / "campaign.jsonl"
        policy = RunPolicy(jobs=4, trace_path=trace)
        runner = ExperimentRunner("merge_test", policy)
        tasks = [
            RowTask(key=f"row{i}", compute=_slow_row, args=(f"row{i}",))
            for i in range(8)
        ]
        outcomes = runner.run_rows(tasks)
        telemetry.shutdown()
        assert [o.value["tag"] for o in outcomes] == [
            f"row{i}" for i in range(8)
        ]

        records = [r for _, r in iter_trace(trace)]
        assert not list(validate_trace(trace))
        rows = [
            r
            for r in records
            if r["kind"] == "span" and r["name"] == "experiment.row"
        ]
        assert {r["attrs"]["key"] for r in rows} == {
            f"row{i}" for i in range(8)
        }
        assert all(r["attrs"]["status"] == "ok" for r in rows)
        # the rows really came from several worker processes
        assert len({r["pid"] for r in rows}) >= 2
        counted = sum(
            r["value"]
            for r in records
            if r["kind"] == "counter" and r["name"] == "experiment.rows"
        )
        assert counted == 8

    def test_sequential_runner_traces_rows_too(self, tmp_path):
        trace = tmp_path / "seq.jsonl"
        runner = ExperimentRunner(
            "seq_test", RunPolicy(trace_path=trace)
        )
        runner.run_row("only", _slow_row, args=("only",))
        telemetry.shutdown()
        rows = [
            r
            for _, r in iter_trace(trace)
            if r["kind"] == "span" and r["name"] == "experiment.row"
        ]
        assert len(rows) == 1 and rows[0]["attrs"]["experiment"] == "seq_test"


class TestReportCli:
    def _write_trace(self, path):
        telemetry.configure(path=path)
        with telemetry.span("experiment.row", experiment="e", key="k"):
            with telemetry.span("sat.solve"):
                pass
        telemetry.counter_add("sat.conflicts", 3)
        telemetry.shutdown()

    def test_summarize(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        summary = summarize_trace(path)
        assert summary.spans["sat.solve"].count == 1
        assert summary.counters["sat.conflicts"] == 3

    def test_cli_report_ok(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        assert run_trace_cli("report", str(path)) == 0
        out = capsys.readouterr().out
        assert "sat.solve" in out and "sat.conflicts" in out

    def test_cli_validate_fails_on_unknown_span(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "span",
                    "name": "made.up",
                    "ts": 1.0,
                    "dur_s": 0.1,
                    "pid": 1,
                    "span_id": "1-1",
                    "parent_id": None,
                    "attrs": {},
                }
            )
            + "\n"
        )
        assert run_trace_cli("validate", str(path)) == 1
        assert "made.up" in capsys.readouterr().out

    def test_cli_missing_file(self, tmp_path):
        assert run_trace_cli("report", str(tmp_path / "none.jsonl")) == 2
