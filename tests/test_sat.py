"""Tests for the CNF container, CDCL solver, Tseitin encoding, equivalence."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import c17, mini_alu, ripple_adder
from repro.netlist import GateType, Netlist
from repro.sat import (
    CNF,
    BudgetExhausted,
    CircuitEncoder,
    Solver,
    build_miter,
    check_equivalence,
    evaluate_cnf,
    prove_unlocks,
    solve_circuit,
    solve_cnf,
)


class TestCNF:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_vars(3) == [2, 3, 4]
        assert cnf.n_vars == 4

    def test_add_clause_tracks_vars(self):
        cnf = CNF()
        cnf.add_clause([5, -2])
        assert cnf.n_vars == 5
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([0])

    def test_dimacs_roundtrip(self):
        cnf = CNF()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-1])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.n_vars == cnf.n_vars
        assert back.clauses == cnf.clauses

    def test_dimacs_header_and_comments(self):
        back = CNF.from_dimacs("c comment\np cnf 4 1\n1 -4 0\n")
        assert back.n_vars == 4
        assert back.clauses == [(1, -4)]

    def test_bad_header(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p dnf 1 1\n1 0\n")

    def test_evaluate_cnf(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert evaluate_cnf(cnf, {1: False, 2: True})
        assert not evaluate_cnf(cnf, {1: True, 2: True})


class TestSolverBasics:
    def test_trivial_sat(self):
        s = Solver()
        s.add_clause([1])
        r = s.solve()
        assert r.sat and r.model[1] is True

    def test_trivial_unsat(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat

    def test_empty_formula_sat(self):
        assert Solver().solve().sat

    def test_tautology_dropped(self):
        s = Solver()
        assert s.add_clause([1, -1])
        assert s.solve().sat

    def test_duplicate_literals_merged(self):
        s = Solver()
        s.add_clause([2, 2, 2])
        r = s.solve()
        assert r.sat and r.model[2] is True

    def test_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[-1, -2]).sat
        r = s.solve(assumptions=[-1])
        assert r.sat and r.model[2] is True
        # solver still reusable without assumptions
        assert s.solve().sat

    def test_incremental_clause_addition(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve().sat
        s.add_clause([-1])
        s.add_clause([-2])
        assert not s.solve().sat

    def test_conflict_budget(self):
        # pigeonhole 6 needs far more than 5 conflicts
        cnf = _pigeonhole(6)
        with pytest.raises(BudgetExhausted):
            solve_cnf(cnf, conflict_budget=5)

    def test_stats_populated(self):
        cnf = _pigeonhole(4)
        r = solve_cnf(cnf)
        assert not r.sat
        assert r.conflicts > 0


def _pigeonhole(n: int) -> CNF:
    cnf = CNF()
    var = {}
    for p in range(n + 1):
        for h in range(n):
            var[p, h] = cnf.new_var()
    for p in range(n + 1):
        cnf.add_clause([var[p, h] for h in range(n)])
    for h in range(n):
        for p1 in range(n + 1):
            for p2 in range(p1 + 1, n + 1):
                cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


class TestSolverExhaustive:
    def test_pigeonhole_unsat(self):
        for n in (3, 4, 5):
            assert not solve_cnf(_pigeonhole(n)).sat

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_3sat_vs_bruteforce(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(3, 8)
        nc = rng.randint(3, 35)
        cnf = CNF()
        cnf.n_vars = nv
        for _ in range(nc):
            lits = rng.sample(range(1, nv + 1), k=min(3, nv))
            cnf.add_clause([lit if rng.random() < 0.5 else -lit for lit in lits])
        res = solve_cnf(cnf)
        brute = any(
            evaluate_cnf(cnf, {v: bool((m >> (v - 1)) & 1) for v in range(1, nv + 1)})
            for m in range(1 << nv)
        )
        assert res.sat == brute
        if res.sat:
            assert evaluate_cnf(cnf, res.model)


class TestTseitin:
    @pytest.mark.parametrize(
        "gtype,arity",
        [
            (GateType.AND, 2),
            (GateType.AND, 3),
            (GateType.NAND, 2),
            (GateType.OR, 3),
            (GateType.NOR, 2),
            (GateType.XOR, 2),
            (GateType.XOR, 3),
            (GateType.XNOR, 3),
            (GateType.NOT, 1),
            (GateType.BUF, 1),
            (GateType.MUX, 3),
        ],
    )
    def test_single_gate_encoding_exhaustive(self, gtype, arity):
        nl = Netlist("g")
        ins = [nl.add_input(f"i{k}") for k in range(arity)]
        nl.add_gate("y", gtype, ins)
        nl.set_outputs(["y"])
        enc = CircuitEncoder(nl)
        solver = Solver(enc.cnf)
        for bits in itertools.product([0, 1], repeat=arity):
            want = nl.evaluate_outputs(dict(zip(ins, bits)))["y"]
            assumptions = [
                enc.var(i) if b else -enc.var(i) for i, b in zip(ins, bits)
            ]
            r = solver.solve(assumptions=assumptions)
            assert r.sat
            assert int(r.model[enc.var("y")]) == want

    def test_constants_encoded(self):
        nl = Netlist("c")
        nl.add_gate("one", GateType.CONST1)
        nl.add_gate("zero", GateType.CONST0)
        nl.add_gate("y", GateType.OR, ["one", "zero"])
        nl.set_outputs(["y"])
        enc = CircuitEncoder(nl)
        r = Solver(enc.cnf).solve()
        assert r.model[enc.var("y")] is True

    def test_shared_variables(self):
        nl = c17()
        cnf = CNF()
        shared = {i: cnf.new_var() for i in nl.inputs}
        e1 = CircuitEncoder(nl, cnf=cnf, share=dict(shared))
        e2 = CircuitEncoder(nl, cnf=cnf, share=dict(shared))
        # identical circuits over shared inputs: outputs must agree
        for o in nl.outputs:
            cnf.add_clause([e1.var(o), -e2.var(o)])
            cnf.add_clause([-e1.var(o), e2.var(o)])
        assert Solver(cnf).solve().sat


class TestEquivalence:
    def test_equal_circuits(self):
        nl = ripple_adder(3)
        eq, cex = check_equivalence(nl, nl.copy())
        assert eq and cex is None

    def test_inequal_circuits_give_cex(self):
        a = ripple_adder(2)
        b = ripple_adder(2)
        # corrupt one gate of b
        g = b.gate("s0")
        b.replace_gate("s0", GateType.XNOR, g.fanin)
        eq, cex = check_equivalence(a, b)
        assert not eq
        assert set(cex) == set(a.inputs)
        # the counterexample actually distinguishes them
        assert a.evaluate_outputs(cex) != b.evaluate_outputs(cex)

    def test_equivalence_with_fixed_key(self):
        orig = mini_alu(2)
        locked = orig.copy("locked")
        locked.add_input("k")
        g = locked.gate("y0")
        locked.add_gate("y0_m", g.gtype, g.fanin)
        locked.replace_gate("y0", GateType.XOR, ("y0_m", "k"))
        assert prove_unlocks(orig, locked, {"k": 0})
        assert not prove_unlocks(orig, locked, {"k": 1})

    def test_miter_output_count_mismatch(self):
        with pytest.raises(ValueError):
            build_miter(ripple_adder(2), mini_alu(2))

    def test_solve_circuit_justification(self):
        nl = c17()
        r = solve_circuit(nl, {"G22": 1, "G23": 0})
        assert r.sat
        model_inputs = {
            i: int(r.model[CircuitEncoder(nl).var(i)]) for i in []
        }  # noqa: F841 — justification checked below
        # reconstruct assignment from the result by re-solving with encoder
        enc = CircuitEncoder(nl)
        for name, val in {"G22": 1, "G23": 0}.items():
            v = enc.var(name)
            enc.cnf.add_clause([v if val else -v])
        r2 = Solver(enc.cnf).solve()
        asg = {i: int(r2.model[enc.var(i)]) for i in nl.inputs}
        out = nl.evaluate_outputs(asg)
        assert out == {"G22": 1, "G23": 0}
