#!/usr/bin/env python
"""Bench regression gate: diff fresh bench reports against baselines.

Compares freshly produced ``BENCH_sim.json`` / ``BENCH_telemetry.json`` /
``BENCH_runtime.json`` against the copies committed at the repo root and
fails (exit 1) on a regression:

* **missing metrics** — a circuit, field, or whole file the baseline has
  but the fresh report lacks is always a failure (a silently shrinking
  benchmark is the classic way perf gates rot);
* **slowdown** — a higher-is-better metric (``speedup``,
  ``fused_speedup``, ``satattack.conflict_ratio``,
  ``satattack.dips_per_solve``) dropping more than ``--threshold``
  percent (default 25) below baseline, or a lower-is-better overhead
  metric growing past both its baseline + threshold *and* its embedded
  acceptance bound;
* **correctness** — ``match: false`` in a fresh sim report or
  ``pass: false`` in a fresh telemetry report fails regardless of
  timing.

Only *within-run ratios* (engine-vs-scalar speedup, projected overhead
percentage) are compared across machines — absolute wall-clock numbers
from a different box are not comparable and are reported informationally
only.

``BENCH_runtime.json`` records a one-off before/after instrumentation
measurement that cannot be cheaply regenerated; when no fresh copy is
given the committed baseline is self-checked against its own acceptance
bound instead.

Usage::

    python scripts/bench_compare.py --fresh-dir .bench-fresh \
        [--baseline-dir .] [--threshold 25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD_PCT = 25.0


def _load(path: Path) -> dict | None:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"error: {path} does not hold a JSON object")
    return payload


class Gate:
    """Collects comparisons; remembers failures."""

    def __init__(self, threshold_pct: float) -> None:
        self.threshold_pct = threshold_pct
        self.failures: list[str] = []
        self.lines: list[str] = []

    def info(self, msg: str) -> None:
        self.lines.append(f"  {msg}")

    def fail(self, msg: str) -> None:
        self.failures.append(msg)
        self.lines.append(f"  FAIL: {msg}")

    def check_higher_better(
        self, label: str, baseline: float, fresh: float
    ) -> None:
        """Fail when ``fresh`` is >threshold% below ``baseline``."""
        floor = baseline * (1.0 - self.threshold_pct / 100.0)
        verdict = "ok" if fresh >= floor else "REGRESSION"
        self.lines.append(
            f"  {label:<42} baseline {baseline:>10.2f}  "
            f"fresh {fresh:>10.2f}  ({verdict})"
        )
        if fresh < floor:
            self.failures.append(
                f"{label}: {fresh:.2f} is more than "
                f"{self.threshold_pct:g}% below baseline {baseline:.2f}"
            )


def compare_sim(gate: Gate, baseline: dict, fresh: dict | None) -> None:
    gate.lines.append("BENCH_sim.json (compiled engine vs scalar)")
    if fresh is None:
        gate.fail("fresh BENCH_sim.json missing")
        return
    base_circuits = {c["circuit"]: c for c in baseline.get("circuits", [])}
    fresh_circuits = {c["circuit"]: c for c in fresh.get("circuits", [])}
    if not base_circuits:
        gate.fail("baseline BENCH_sim.json has no circuits")
        return
    for name, base_row in sorted(base_circuits.items()):
        fresh_row = fresh_circuits.get(name)
        if fresh_row is None:
            gate.fail(f"sim: circuit {name!r} missing from fresh report")
            continue
        if fresh_row.get("match") is not True:
            gate.fail(f"sim: {name}: engine/scalar mismatch (match != true)")
        speedup = fresh_row.get("speedup")
        base_speedup = base_row.get("speedup")
        if speedup is None or base_speedup is None:
            gate.fail(f"sim: {name}: 'speedup' metric missing")
            continue
        gate.check_higher_better(
            f"sim.{name}.speedup", float(base_speedup), float(speedup)
        )
        fused = fresh_row.get("fused_speedup")
        base_fused = base_row.get("fused_speedup")
        if fused is None or base_fused is None:
            gate.fail(f"sim: {name}: 'fused_speedup' metric missing")
        else:
            gate.check_higher_better(
                f"sim.{name}.fused_speedup", float(base_fused), float(fused)
            )
        for tput_field in (
            "optape_key_patterns_per_s",
            "fused_key_patterns_per_s",
        ):
            tput = fresh_row.get(tput_field)
            if tput is None:
                gate.fail(f"sim: {name}: {tput_field!r} missing")
            else:
                # cross-machine absolute throughput: informational only
                gate.info(
                    f"sim.{name}.{tput_field}  "
                    f"fresh {float(tput):,.0f} (not gated across machines)"
                )
    _compare_satattack(gate, baseline, fresh)


def _compare_satattack(gate: Gate, baseline: dict, fresh: dict) -> None:
    """Gate the SAT-attack solver-efficiency block of BENCH_sim.json.

    Both regimes are deterministic, so ``conflict_ratio`` and
    ``dips_per_solve`` are machine-independent and gated like within-run
    speedups; wall-clock seconds stay informational.
    """
    base_sat = baseline.get("satattack")
    fresh_sat = fresh.get("satattack")
    if not isinstance(base_sat, dict):
        gate.fail("sim: baseline 'satattack' block missing")
        return
    if not isinstance(fresh_sat, dict):
        gate.fail("sim: fresh 'satattack' block missing")
        return
    if fresh_sat.get("match") is not True:
        gate.fail("sim: satattack: a regime failed to recover a correct key")
    for field in ("conflict_ratio", "dips_per_solve"):
        base_v = base_sat.get(field)
        fresh_v = fresh_sat.get(field)
        if base_v is None or fresh_v is None:
            gate.fail(f"sim: satattack: {field!r} metric missing")
            continue
        gate.check_higher_better(
            f"sim.satattack.{field}", float(base_v), float(fresh_v)
        )


def compare_telemetry(gate: Gate, baseline: dict, fresh: dict | None) -> None:
    gate.lines.append("BENCH_telemetry.json (disabled-telemetry overhead)")
    if fresh is None:
        gate.fail("fresh BENCH_telemetry.json missing")
        return
    if fresh.get("pass") is not True:
        gate.fail("telemetry: fresh report's own threshold check failed")
    base_pct = baseline.get("projected_overhead_pct")
    fresh_pct = fresh.get("projected_overhead_pct")
    bound = fresh.get("threshold_pct", 2.0)
    if fresh_pct is None or base_pct is None:
        gate.fail("telemetry: 'projected_overhead_pct' metric missing")
        return
    # overheads live near zero, so relative-to-baseline alone would flag
    # noise; regress only when fresh exceeds both baseline+threshold and
    # half the hard acceptance bound
    ceiling = max(
        float(base_pct) * (1.0 + gate.threshold_pct / 100.0),
        float(bound) / 2.0,
    )
    verdict = "ok" if float(fresh_pct) <= ceiling else "REGRESSION"
    gate.lines.append(
        f"  telemetry.projected_overhead_pct           "
        f"baseline {float(base_pct):>10.4f}  fresh {float(fresh_pct):>10.4f}"
        f"  ({verdict})"
    )
    if float(fresh_pct) > ceiling:
        gate.failures.append(
            f"telemetry: projected overhead {fresh_pct}% exceeds "
            f"ceiling {ceiling:.4f}%"
        )


def compare_runtime(gate: Gate, baseline: dict, fresh: dict | None) -> None:
    gate.lines.append("BENCH_runtime.json (governance instrumentation cost)")
    source = fresh if fresh is not None else baseline
    which = "fresh" if fresh is not None else "baseline (self-check)"
    overhead = source.get("overhead_percent")
    bound = source.get("acceptance_bound_percent")
    if not isinstance(overhead, dict) or bound is None:
        gate.fail(f"runtime: {which}: overhead/acceptance metrics missing")
        return
    for key, value in sorted(overhead.items()):
        if not isinstance(value, (int, float)):
            continue  # prose note fields
        verdict = "ok" if float(value) <= float(bound) else "REGRESSION"
        gate.lines.append(
            f"  runtime.{key:<34} {which}: {float(value):>6.1f}% "
            f"(bound {float(bound):g}%, {verdict})"
        )
        if float(value) > float(bound):
            gate.failures.append(
                f"runtime: {key} overhead {value}% exceeds the "
                f"{bound}% acceptance bound"
            )

    # supervised worker-fleet overhead (repro chaos bench): the
    # supervisor block carries its own acceptance bound (<3%) and is
    # required — a report without it predates the supervised pool
    sup = source.get("supervisor")
    if not isinstance(sup, dict):
        gate.fail(f"runtime: {which}: 'supervisor' overhead block missing")
        return
    sup_overhead = sup.get("overhead_percent")
    sup_bound = sup.get("acceptance_bound_percent")
    if not isinstance(sup_overhead, (int, float)) or sup_bound is None:
        gate.fail(
            f"runtime: {which}: supervisor overhead/acceptance "
            "metrics missing"
        )
        return
    verdict = "ok" if float(sup_overhead) <= float(sup_bound) else "REGRESSION"
    gate.lines.append(
        f"  runtime.supervisor_pool_overhead         {which}: "
        f"{float(sup_overhead):>6.1f}% (bound {float(sup_bound):g}%, "
        f"{verdict})"
    )
    if float(sup_overhead) > float(sup_bound):
        gate.failures.append(
            f"runtime: supervised-pool overhead {sup_overhead}% exceeds "
            f"the {sup_bound}% acceptance bound"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        help="directory holding freshly produced BENCH_*.json reports",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help="relative slowdown that fails the gate (default 25)",
    )
    args = parser.parse_args(argv)

    gate = Gate(args.threshold)
    comparisons = (
        ("BENCH_sim.json", compare_sim),
        ("BENCH_telemetry.json", compare_telemetry),
        ("BENCH_runtime.json", compare_runtime),
    )
    for filename, compare in comparisons:
        baseline = _load(args.baseline_dir / filename)
        fresh = _load(args.fresh_dir / filename)
        if baseline is None:
            gate.fail(f"committed baseline {filename} missing")
            continue
        compare(gate, baseline, fresh)

    print(f"bench gate (threshold {args.threshold:g}%)")
    for line in gate.lines:
        print(line)
    if gate.failures:
        print(f"\nBENCH GATE FAILED: {len(gate.failures)} regression(s)")
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
