#!/usr/bin/env python
"""End-to-end smoke for the ``repro serve`` job service (CI: serve-smoke).

Boots a real daemon and checks the acceptance bar of the service layer:

1. **happy path** — a small Table-I campaign submitted over the socket
   runs to ``done`` with row-level progress (``rows_done == rows_total``)
   and a rendered result table;
2. **cache admission** — resubmitting the identical spec is answered
   from the result store *without scheduling*: the job is born ``done``,
   carries ``deduped_from``, returns byte-identical text, and the trace
   records a nonzero ``cache.hit`` total;
3. **drain + restart resume** — SIGTERM mid-job exits 0 after
   checkpointing partial rows; a second daemon generation re-admits the
   job from the state directory and finishes it, and the result is
   byte-identical to a direct in-process :func:`execute_job` run;
4. **journal** — every line of ``journal.jsonl`` written across both
   daemon generations validates against the closed v1 event schema.

The service-overhead gate (<3% vs direct ``run_rows``) is a separate
step of ``make serve-smoke``: ``python -m repro.service.bench`` writes a
fresh ``BENCH_service.json`` and ``scripts/bench_compare.py --only
service`` enforces its embedded acceptance bound.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--state-dir DIR]
"""

from __future__ import annotations

import argparse
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import RunPolicy  # noqa: E402
from repro.service.api import JobSpec, validate_journal  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import execute_job  # noqa: E402
from repro.telemetry import summarize_trace  # noqa: E402

TABLE1_PARAMS = {
    "scale": 0.004,
    "circuits": ["s38417", "b20"],
    "n_patterns": 256,
}
SLEEP_PARAMS = {"rows": 8, "seconds": 0.4}


def _check(ok: bool, what: str) -> None:
    verdict = "ok" if ok else "FAIL"
    print(f"  {what}: {verdict}")
    if not ok:
        raise SystemExit(f"serve-smoke failed: {what}")


def _boot(state_dir: Path, trace: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state_dir),
            "--trace",
            str(trace),
        ],
    )
    ServiceClient(state_dir / "serve.sock").wait_ready(timeout_s=60.0)
    return proc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--state-dir",
        type=Path,
        default=Path(".repro-serve-smoke"),
        help="service state directory (wiped at start)",
    )
    args = parser.parse_args(argv)

    state: Path = args.state_dir
    if state.exists():
        shutil.rmtree(state)
    trace = state / "trace.jsonl"
    client = ServiceClient(state / "serve.sock")

    print("serve-smoke: boot + happy path")
    daemon = _boot(state, trace)
    try:
        first = client.submit("table1", TABLE1_PARAMS)
        status = client.wait(first.job_id, timeout_s=300.0)
        _check(status.state == "done", "first submit runs to done")
        _check(
            status.rows_done == status.rows_total == 2,
            f"row-level progress {status.rows_done}/{status.rows_total}",
        )
        first_result = client.result(first.job_id)
        _check(
            bool(first_result.text) and len(first_result.rows) == 2,
            "result carries rows + rendered table",
        )

        print("serve-smoke: cache admission (identical resubmit)")
        second = client.submit("table1", TABLE1_PARAMS)
        _check(
            second.state == "done" and second.deduped_from == first.job_id,
            "identical submit is born done via dedup",
        )
        second_result = client.result(second.job_id)
        _check(
            second_result.text == first_result.text
            and second_result.rows == first_result.rows,
            "deduped result is byte-identical",
        )

        print("serve-smoke: drain mid-job")
        slow = client.submit("sleep", SLEEP_PARAMS)
        deadline = time.monotonic() + 60.0
        while True:
            progress = client.status(slow.job_id)
            if progress.state == "running" and progress.rows_done >= 2:
                break
            if time.monotonic() > deadline:
                raise SystemExit("serve-smoke: sleep job never progressed")
            time.sleep(0.05)
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        _check(code == 0, f"daemon drained cleanly (exit {code})")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    print("serve-smoke: restart resumes the drained job")
    daemon = _boot(state, trace)
    try:
        resumed = client.wait(slow.job_id, timeout_s=300.0)
        _check(
            resumed.state == "done"
            and resumed.rows_done == resumed.rows_total == 8,
            "drained job resumed to completion",
        )
        resumed_result = client.result(slow.job_id)
        with tempfile.TemporaryDirectory() as ckpt:
            direct = execute_job(
                JobSpec(campaign="sleep", params=dict(SLEEP_PARAMS)),
                RunPolicy(checkpoint_dir=ckpt),
            )
        _check(
            resumed_result.text == direct.text
            and resumed_result.rows == direct.rows,
            "resumed result byte-identical to a direct run",
        )
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=60)

    print("serve-smoke: journal + trace")
    errors = list(validate_journal(state / "journal.jsonl"))
    _check(not errors, f"journal schema-valid ({errors[:3] or 'clean'})")
    hits = summarize_trace(trace).counters.get("cache.hit", 0)
    _check(hits > 0, f"nonzero cache.hit total from dedup admission ({hits})")

    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
