#!/usr/bin/env python
"""Parser-robustness gate over the malformed-netlist corpus.

Every file under ``tests/data/corpus_bad/`` is deliberately broken.
The streaming front end must turn each of them into **structured
diagnostics** — at least one :class:`ParseDiagnostic` carrying a real
line number — and must never raise.  A traceback here means a malformed
real-world netlist would crash a campaign instead of surfacing a lint
finding, which is exactly the failure mode the recovering parser exists
to prevent.

Usage::

    PYTHONPATH=src python scripts/corpus_robustness.py [--dir DIR]
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path

DEFAULT_DIR = Path("tests/data/corpus_bad")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path, default=DEFAULT_DIR)
    args = parser.parse_args(argv)

    from repro.corpus.frontend import parse_path_recovering

    files = sorted(
        p for p in args.dir.iterdir()
        if p.suffix in (".bench", ".v")
    )
    if not files:
        print(f"corpus robustness: no netlists under {args.dir}",
              file=sys.stderr)
        return 1

    failures = 0
    for path in files:
        try:
            result = parse_path_recovering(path)
        except Exception:
            print(f"  {path.name}: FAIL — parser raised:")
            traceback.print_exc()
            failures += 1
            continue
        if not result.errors:
            print(f"  {path.name}: FAIL — malformed file produced "
                  f"zero diagnostics")
            failures += 1
            continue
        located = [d for d in result.errors if d.line_no > 0]
        if not located:
            print(f"  {path.name}: FAIL — no diagnostic carries a "
                  f"line number")
            failures += 1
            continue
        first = located[0]
        print(f"  {path.name}: ok — {len(result.errors)} diagnostic(s), "
              f"first at line {first.line_no}: {first.message}")

    print(f"corpus robustness: {len(files) - failures}/{len(files)} "
          f"malformed file(s) handled structurally")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
